"""Adjoint-vs-finite-differences benchmark harness.

The honest baseline for a design gradient is what users would otherwise
run: central finite differences, two full VP solves per parameter.  The
adjoint engine prices *all* parameters with one forward plus one reverse
pass on the cached factors, so the expected win is ~``n_params`` (modulo
fixed costs).  This harness runs both on identical parameter spaces,
cross-checks a sampled subset, and reports the speedup --
``benchmarks/test_adjoint.py`` asserts >= 10x at >= 100 parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.reporting import ascii_table, write_csv, write_json
from repro.core.planes import PlaneFactorCache
from repro.grid.stack3d import PowerGridStack
from repro.sensitivity.adjoint import (
    DropMetric,
    GradientResult,
    SensitivityConfig,
    SmoothWorstDrop,
    adjoint_gradient,
)
from repro.sensitivity.fd import compare_gradients, finite_difference_gradient
from repro.sensitivity.params import ParameterSpace

ADJOINT_HEADERS = ["parameter", "adjoint_gradient", "fd_gradient", "rel_error"]


@dataclass
class AdjointBenchReport:
    """One adjoint-vs-FD run, renderable as table/CSV/JSON."""

    stack_name: str
    n_nodes: int
    n_params: int
    metric_name: str
    metric_value: float
    adjoint_seconds: float
    fd_seconds: float
    fd_params: int
    subset_indices: np.ndarray
    fd_subset: np.ndarray
    parity: dict
    gradient_result: GradientResult = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def speedup(self) -> float:
        """FD cost over adjoint cost, *per full gradient*: the measured
        FD time covers ``fd_params`` parameters, so it is scaled to the
        full space before dividing (exact when FD cost is linear in the
        parameter count, which two-solves-per-parameter is)."""
        full_fd = self.fd_seconds * (self.n_params / max(self.fd_params, 1))
        return full_fd / max(self.adjoint_seconds, 1e-12)

    def rows(self) -> list[list]:
        adjoint = self.gradient_result.gradient[self.subset_indices]
        out = []
        for k, idx in enumerate(self.subset_indices):
            fd = self.fd_subset[k]
            rel = abs(adjoint[k] - fd) / max(abs(fd), 1e-300)
            out.append(
                [
                    self.gradient_result.param_names[idx],
                    f"{adjoint[k]:.6e}",
                    f"{fd:.6e}",
                    f"{rel:.2e}",
                ]
            )
        return out

    def table(self) -> str:
        return ascii_table(ADJOINT_HEADERS, self.rows())

    def summary(self) -> str:
        return (
            f"{self.stack_name or 'stack'}: {self.n_nodes} nodes, "
            f"{self.n_params} parameters; adjoint {self.adjoint_seconds:.3f}s "
            f"vs FD {self.fd_seconds:.3f}s over {self.fd_params} params "
            f"-> x{self.speedup:.1f} per full gradient, max rel error "
            f"{self.parity['max_rel_error']:.2e} on "
            f"{self.parity['n_compared']} sampled parameters"
        )

    def payload(self) -> dict:
        return {
            "stack": self.stack_name,
            "n_nodes": self.n_nodes,
            "n_params": self.n_params,
            "metric": self.metric_name,
            "metric_value_v": float(self.metric_value),
            "adjoint_seconds": float(self.adjoint_seconds),
            "fd_seconds": float(self.fd_seconds),
            "fd_params": int(self.fd_params),
            "speedup": float(self.speedup),
            "parity": self.parity,
            "new_factorizations": int(
                self.gradient_result.new_factorizations
            ),
            "adjoint_outer_iterations": int(
                self.gradient_result.adjoint_outer_iterations
            ),
            "subset": [
                {
                    "parameter": self.gradient_result.param_names[idx],
                    "adjoint": float(self.gradient_result.gradient[idx]),
                    "fd": float(self.fd_subset[k]),
                }
                for k, idx in enumerate(self.subset_indices)
            ],
        }

    def to_csv(self, path) -> None:
        write_csv(path, ADJOINT_HEADERS, self.rows())

    def to_json(self, path) -> None:
        write_json(path, self.payload())


def run_adjoint_benchmark(
    stack: PowerGridStack,
    params: ParameterSpace,
    metric: DropMetric | None = None,
    *,
    fd_params: int | None = None,
    parity_subset: int = 8,
    fd_step: float = 1e-4,
    seed: int = 0,
    config: SensitivityConfig | None = None,
) -> AdjointBenchReport:
    """Time the adjoint gradient against central FD on the same space.

    ``fd_params`` bounds how many parameters the FD baseline actually
    differentiates (it is O(2 solves) each; the speedup extrapolates
    linearly to the full space and says so in the report).  The parity
    subset is drawn from the FD-sampled indices.
    """
    metric = metric or SmoothWorstDrop()
    config = config or SensitivityConfig(forward_tol=1e-9, adjoint_tol=1e-10)
    rng = np.random.default_rng(seed)

    cache = PlaneFactorCache()
    cache.get(stack, pin=True)  # prime the baseline outside the timing
    t0 = time.perf_counter()
    result = adjoint_gradient(params, metric, cache=cache, config=config)
    adjoint_seconds = time.perf_counter() - t0

    n_fd = params.size if fd_params is None else min(fd_params, params.size)
    fd_indices = np.sort(rng.choice(params.size, size=n_fd, replace=False))
    t0 = time.perf_counter()
    fd = finite_difference_gradient(
        params,
        metric,
        indices=fd_indices,
        step=fd_step,
        solver="vp",
        outer_tol=1e-10,
    )
    fd_seconds = time.perf_counter() - t0

    subset_positions = rng.choice(
        n_fd, size=min(parity_subset, n_fd), replace=False
    )
    subset_positions = np.sort(subset_positions)
    subset_indices = fd_indices[subset_positions]
    fd_subset = fd[subset_positions]
    # Near-zero gradients are FD noise; guard the relative measure with
    # an absolute floor well below any actionable sensitivity.
    parity = compare_gradients(
        result.gradient[subset_indices], fd_subset, atol=1e-9
    )

    return AdjointBenchReport(
        stack_name=stack.name,
        n_nodes=stack.n_nodes,
        n_params=params.size,
        metric_name=metric.name,
        metric_value=result.metric_value,
        adjoint_seconds=adjoint_seconds,
        fd_seconds=fd_seconds,
        fd_params=n_fd,
        subset_indices=subset_indices,
        fd_subset=fd_subset,
        parity=parity,
        gradient_result=result,
    )
