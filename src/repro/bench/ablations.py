"""Ablation experiment drivers: E6-E9, E11.

Each function returns plain data (lists of dataclass points) so both the
pytest-benchmark suite and the CLI can render them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compare import compare_voltages
from repro.obs import Stopwatch
from repro.bench.methods import run_pcg, run_vp
from repro.core.vp import VPConfig, VoltagePropagationSolver
from repro.grid.conductance import stack_system
from repro.grid.generators import synthesize_stack
from repro.linalg.direct import solve_direct
from repro.linalg.random_walk import RandomWalkSolver, WalkModel
from repro.linalg.stationary import gauss_seidel


# ----------------------------------------------------------------------
# E6: Gauss-Seidel degradation as TSV resistance shrinks (paper §III-A)
# ----------------------------------------------------------------------
@dataclass
class TSVResistancePoint:
    r_tsv: float
    gs_iterations: int
    gs_converged: bool
    vp_outer_iterations: int
    vp_converged: bool
    vp_max_error: float


def tsv_resistance_sweep(
    plane_side: int = 24,
    r_values: tuple[float, ...] = (0.5, 0.05, 0.005, 0.0005),
    *,
    seed: int = 0,
    gs_tol: float = 1e-7,
    gs_max_iter: int = 30_000,
) -> list[TSVResistancePoint]:
    """§III-A's diagonal-dominance argument, measured.

    The *inter-tier* TSV segments contribute pure off-diagonal coupling
    (their conductance appears symmetrically on both tiers' rows), so as
    ``r_tsv`` drops the ratio of diagonal to off-diagonal mass decays and
    point Gauss-Seidel needs ever more sweeps.  The pin-attachment
    segment is held at the paper's 0.05 ohm throughout -- it adds
    *diagonal* mass (the rail is folded in) and sweeping it too would
    mask the effect the paper describes.  VP, which never relaxes across
    TSVs, stays flat (and in fact speeds up: stiffer pillars make the
    propagated-voltage fixed point easier).
    """
    points = []
    for r_tsv in r_values:
        stack = synthesize_stack(
            plane_side, plane_side, 3, rng=seed, name=f"rtsv-{r_tsv}",
        )
        stack.pillars.r_seg[:-1, :] = r_tsv
        stack.pillars.r_seg[-1, :] = 0.05
        matrix, rhs = stack_system(stack)
        reference = solve_direct(matrix, rhs)
        gs = gauss_seidel(matrix, rhs, tol=gs_tol, max_iter=gs_max_iter)
        voltages, vp = run_vp(stack)
        error = compare_voltages(
            voltages.ravel(), reference
        ).max_error
        points.append(
            TSVResistancePoint(
                r_tsv=r_tsv,
                gs_iterations=gs.iterations,
                gs_converged=gs.converged,
                vp_outer_iterations=vp.iterations,
                vp_converged=vp.converged,
                vp_max_error=error,
            )
        )
    return points


# ----------------------------------------------------------------------
# E7: random walks trapped in TSV pillars (paper §I)
# ----------------------------------------------------------------------
@dataclass
class WalkTrapPoint:
    r_tsv: float
    mean_walk_length: float
    max_walk_length: int
    absorbed_fraction: float


def random_walk_trap(
    plane_side: int = 16,
    r_values: tuple[float, ...] = (5.0, 0.5, 0.05, 0.005),
    *,
    n_walks: int = 300,
    seed: int = 0,
    max_steps: int = 200_000,
) -> list[WalkTrapPoint]:
    """Mean walk length vs TSV resistance -- §I's trap claim, measured.

    Setup: pins only at the corner pillar (a sparse peripheral bump map),
    the probe node at the opposite corner of the bottom tier, and the
    pin-attachment segment held at the paper's 0.05 ohm while only the
    *inter-tier* TSV resistance sweeps.  A walker must cross the plane to
    reach the pin; every pillar it touches on the way captures it for
    ~``1/p_escape`` steps with ``p_escape ~ g_plane / (g_plane + 2 g_tsv)``,
    so shrinking ``r_tsv`` inflates walk lengths without changing the
    horizontal distance to cover ("trapped in the TSVs ... while searching
    a path to a power pad").
    """
    points = []
    for r_tsv in r_values:
        stack = synthesize_stack(
            plane_side, plane_side, 3, rng=seed, name=f"rw-{r_tsv}",
        )
        # Pins: only the pillar nearest the (0, 0) corner.
        stack.pillars.has_pin[:] = False
        stack.pillars.has_pin[0] = True
        # Sweep inter-tier segments; keep the pin segment fixed.
        stack.pillars.r_seg[:-1, :] = r_tsv
        stack.pillars.r_seg[-1, :] = 0.05
        model = WalkModel.from_stack(stack)
        solver = RandomWalkSolver(model, rng=seed)
        # Probe: bottom tier, far corner (maximal horizontal distance).
        probe = plane_side * plane_side - 1
        estimate = solver.estimate_nodes(
            [probe], n_walks=n_walks, max_steps=max_steps
        )
        points.append(
            WalkTrapPoint(
                r_tsv=r_tsv,
                mean_walk_length=estimate.mean_length,
                max_walk_length=estimate.max_length,
                absorbed_fraction=estimate.absorbed_fraction,
            )
        )
    return points


# ----------------------------------------------------------------------
# E8: VDA policy comparison
# ----------------------------------------------------------------------
@dataclass
class VDAPoint:
    policy: str
    outer_iterations: int
    converged: bool
    seconds: float
    max_error_mv: float


def vda_comparison(
    stack, policies: tuple[str, ...] = ("fixed", "adaptive", "secant", "anderson")
) -> list[VDAPoint]:
    """Outer-iteration counts of the VDA policies on one stack."""
    matrix, rhs = stack_system(stack)
    reference = solve_direct(matrix, rhs)
    points = []
    for policy in policies:
        with Stopwatch("bench.vda_policy", policy=policy) as timer:
            result = VoltagePropagationSolver(
                stack, VPConfig(vda=policy)
            ).solve()
        error = compare_voltages(result.flat_voltages(), reference).max_error
        points.append(
            VDAPoint(
                policy=policy,
                outer_iterations=result.outer_iterations,
                converged=result.converged,
                seconds=timer.seconds,
                max_error_mv=error * 1e3,
            )
        )
    return points


# ----------------------------------------------------------------------
# E9: tier-count scaling (paper conclusion: more tiers benefit more)
# ----------------------------------------------------------------------
@dataclass
class TierScalingPoint:
    n_tiers: int
    n_nodes: int
    vp_seconds: float
    pcg_seconds: float
    pcg_iterations: int

    @property
    def speedup(self) -> float:
        return self.pcg_seconds / self.vp_seconds if self.vp_seconds else 0.0


def tier_scaling(
    plane_side: int = 40,
    tier_counts: tuple[int, ...] = (2, 3, 4, 5),
    *,
    seed: int = 0,
    pcg_preconditioner: str = "jacobi",
) -> list[TierScalingPoint]:
    """VP-vs-PCG speedup as the stack grows taller at fixed tier size."""
    points = []
    for n_tiers in tier_counts:
        stack = synthesize_stack(
            plane_side, plane_side, n_tiers, rng=seed,
            name=f"tiers-{n_tiers}",
        )
        _, vp = run_vp(stack)
        _, pcg = run_pcg(stack, preconditioner=pcg_preconditioner)
        points.append(
            TierScalingPoint(
                n_tiers=n_tiers,
                n_nodes=stack.n_nodes,
                vp_seconds=vp.total_seconds,
                pcg_seconds=pcg.total_seconds,
                pcg_iterations=pcg.iterations,
            )
        )
    return points


# ----------------------------------------------------------------------
# E11: inner-solver choice
# ----------------------------------------------------------------------
@dataclass
class InnerSolverPoint:
    inner: str
    seconds: float
    outer_iterations: int
    inner_iterations: int
    max_error_mv: float
    converged: bool


def inner_solver_comparison(
    stack, inners: tuple[str, ...] = ("rb", "direct", "cg")
) -> list[InnerSolverPoint]:
    """VP cost with the row-based / cached-direct / PCG intra-plane
    solvers (design decision called out in DESIGN.md)."""
    matrix, rhs = stack_system(stack)
    reference = solve_direct(matrix, rhs)
    points = []
    for inner in inners:
        with Stopwatch("bench.inner_solver", inner=inner) as timer:
            result = VoltagePropagationSolver(
                stack, VPConfig(inner=inner)
            ).solve()
        error = compare_voltages(result.flat_voltages(), reference).max_error
        points.append(
            InnerSolverPoint(
                inner=inner,
                seconds=timer.seconds,
                outer_iterations=result.outer_iterations,
                inner_iterations=result.stats.total_inner_iterations,
                max_error_mv=error * 1e3,
                converged=result.converged,
            )
        )
    return points
