"""Table-I regeneration (experiment E1) plus the derived series E2-E4.

``run_table1`` runs VP, PCG and SPICE (up to the SPICE node cutoff) on the
requested circuits, verifies every method against a reference solution,
and renders the measured numbers side by side with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.compare import compare_voltages
from repro.bench.circuits import (
    PAPER_TABLE1,
    build_circuit,
    default_circuit_names,
    spice_node_limit,
)
from repro.bench.methods import (
    MethodResult,
    run_direct,
    run_pcg,
    run_spice,
    run_vp,
)
from repro.bench.reporting import ascii_table, markdown_table
from repro.errors import ReproError

#: Error budget of the paper (volts).
ERROR_BUDGET = 0.5e-3

#: Largest system the verification reference (assembled direct solve) is
#: computed for; beyond it VP and PCG are cross-checked against each other.
REFERENCE_NODE_LIMIT = 1_200_000


@dataclass
class Table1Row:
    """Measured results of one circuit."""

    circuit: str
    n_nodes: int
    vp: MethodResult | None = None
    pcg: MethodResult | None = None
    spice: MethodResult | None = None
    reference_kind: str = ""

    @property
    def speedup_vs_pcg(self) -> float | None:
        if self.vp is None or self.pcg is None or self.vp.total_seconds == 0:
            return None
        return self.pcg.total_seconds / self.vp.total_seconds

    @property
    def memory_ratio_vs_pcg(self) -> float | None:
        if self.vp is None or self.pcg is None or self.vp.peak_memory_bytes == 0:
            return None
        return self.pcg.peak_memory_bytes / self.vp.peak_memory_bytes


@dataclass
class Table1Result:
    """Everything E1 produced, with renderers."""

    rows: list[Table1Row] = field(default_factory=list)
    pcg_preconditioner: str = "jacobi"
    seed: int = 0

    def render(self) -> str:
        headers = [
            "circuit", "nodes",
            "VP mem(MB)", "VP time", "PCG mem(MB)", "PCG time",
            "SPICE mem(MB)", "SPICE time",
            "speedup", "paper speedup",
            "VP err(mV)", "PCG err(mV)",
        ]
        body = []
        for row in self.rows:
            paper = PAPER_TABLE1.get(row.circuit)
            body.append([
                row.circuit,
                row.n_nodes,
                f"{row.vp.memory_mb:.1f}" if row.vp else None,
                f"{row.vp.total_seconds:.3g}s" if row.vp else None,
                f"{row.pcg.memory_mb:.1f}" if row.pcg else None,
                f"{row.pcg.total_seconds:.3g}s" if row.pcg else None,
                f"{row.spice.memory_mb:.1f}" if row.spice else None,
                f"{row.spice.total_seconds:.3g}s" if row.spice else None,
                f"{row.speedup_vs_pcg:.1f}x" if row.speedup_vs_pcg else None,
                f"{paper.speedup_vs_pcg:.1f}x" if paper else None,
                f"{row.vp.max_error * 1e3:.3f}" if row.vp and row.vp.max_error is not None else None,
                f"{row.pcg.max_error * 1e3:.3f}" if row.pcg and row.pcg.max_error is not None else None,
            ])
        return ascii_table(headers, body)

    def to_markdown(self) -> str:
        headers = [
            "circuit", "nodes",
            "VP mem (MB)", "VP time (s)",
            "PCG mem (MB)", "PCG time (s)",
            "SPICE mem (MB)", "SPICE time (s)",
            "speedup VP/PCG", "paper speedup", "mem ratio", "paper mem ratio",
        ]
        body = []
        for row in self.rows:
            paper = PAPER_TABLE1.get(row.circuit)
            body.append([
                row.circuit, row.n_nodes,
                f"{row.vp.memory_mb:.1f}" if row.vp else None,
                f"{row.vp.total_seconds:.3f}" if row.vp else None,
                f"{row.pcg.memory_mb:.1f}" if row.pcg else None,
                f"{row.pcg.total_seconds:.3f}" if row.pcg else None,
                f"{row.spice.memory_mb:.1f}" if row.spice else None,
                f"{row.spice.total_seconds:.3f}" if row.spice else None,
                f"{row.speedup_vs_pcg:.1f}" if row.speedup_vs_pcg else None,
                f"{paper.speedup_vs_pcg:.1f}" if paper else None,
                f"{row.memory_ratio_vs_pcg:.1f}" if row.memory_ratio_vs_pcg else None,
                f"{paper.memory_ratio_vs_pcg:.1f}" if paper else None,
            ])
        return markdown_table(headers, body)

    def within_budget(self, budget: float = ERROR_BUDGET) -> bool:
        """True when every verified method error meets the budget."""
        for row in self.rows:
            for result in (row.vp, row.pcg, row.spice):
                if result and result.max_error is not None:
                    if result.max_error > budget:
                        return False
        return True


def run_table1(
    circuits: list[str] | None = None,
    *,
    methods: tuple[str, ...] = ("vp", "pcg", "spice"),
    pcg_preconditioner: str = "jacobi",
    seed: int = 0,
    verify: bool = True,
    vp_kwargs: dict | None = None,
) -> Table1Result:
    """Run experiment E1.

    ``circuits`` defaults to the current benchmark scale (see
    :func:`repro.bench.circuits.default_circuit_names`).
    """
    if circuits is None:
        circuits = default_circuit_names()
    unknown = [m for m in methods if m not in ("vp", "pcg", "spice")]
    if unknown:
        raise ReproError(f"unknown methods {unknown}")
    result = Table1Result(pcg_preconditioner=pcg_preconditioner, seed=seed)
    vp_kwargs = vp_kwargs or {}

    for name in circuits:
        stack = build_circuit(name, seed=seed)
        row = Table1Row(circuit=name, n_nodes=stack.n_nodes)

        voltages: dict[str, np.ndarray] = {}
        if "vp" in methods:
            v, row.vp = run_vp(stack, **vp_kwargs)
            voltages["vp"] = v
        if "pcg" in methods:
            v, row.pcg = run_pcg(stack, preconditioner=pcg_preconditioner)
            voltages["pcg"] = v
        if "spice" in methods and stack.n_nodes <= spice_node_limit():
            v, row.spice = run_spice(stack)
            voltages["spice"] = v

        if verify and voltages:
            reference, kind = _reference_voltages(stack, voltages)
            row.reference_kind = kind
            for key, method_result in (
                ("vp", row.vp), ("pcg", row.pcg), ("spice", row.spice)
            ):
                if method_result is not None and key in voltages:
                    method_result.max_error = compare_voltages(
                        voltages[key], reference
                    ).max_error
        result.rows.append(row)
    return result


def _reference_voltages(
    stack, voltages: dict[str, np.ndarray]
) -> tuple[np.ndarray, str]:
    """Reference for error metrics: SPICE when it ran, otherwise an
    assembled direct solve (bounded), otherwise the PCG solution."""
    if "spice" in voltages:
        return voltages["spice"], "spice"
    if stack.n_nodes <= REFERENCE_NODE_LIMIT:
        reference, _ = run_direct(stack)
        return reference, "direct"
    if "pcg" in voltages:
        return voltages["pcg"], "pcg (cross-check)"
    return next(iter(voltages.values())), "self"
