"""Figure-shaped experiment drivers: E2 (speedup series), E3 (memory
ratio series), E4 (accuracy), E5 (Fig. 3 convergence trace), E10 (Fig. 2
phase split).

The paper's figures proper are schematics; these drivers regenerate the
quantitative *claims* attached to them (10-20x speedup growing with size,
~3x memory, <=0.5 mV error, propagated voltage converging to VDD).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.circuits import PAPER_TABLE1
from repro.bench.reporting import ascii_table
from repro.bench.table1 import Table1Result
from repro.core.vp import VPConfig, VoltagePropagationSolver
from repro.grid.stack3d import PowerGridStack


@dataclass
class SeriesPoint:
    n_nodes: int
    measured: float
    paper: float | None


def speedup_series(table: Table1Result) -> list[SeriesPoint]:
    """E2: VP-vs-PCG speedup against circuit size, paper alongside."""
    points = []
    for row in table.rows:
        speedup = row.speedup_vs_pcg
        if speedup is None:
            continue
        paper = PAPER_TABLE1.get(row.circuit)
        points.append(
            SeriesPoint(
                n_nodes=row.n_nodes,
                measured=speedup,
                paper=paper.speedup_vs_pcg if paper else None,
            )
        )
    return points


def memory_ratio_series(table: Table1Result) -> list[SeriesPoint]:
    """E3: PCG/VP memory ratio against circuit size (paper: ~3x)."""
    points = []
    for row in table.rows:
        ratio = row.memory_ratio_vs_pcg
        if ratio is None:
            continue
        paper = PAPER_TABLE1.get(row.circuit)
        points.append(
            SeriesPoint(
                n_nodes=row.n_nodes,
                measured=ratio,
                paper=paper.memory_ratio_vs_pcg if paper else None,
            )
        )
    return points


def render_series(points: list[SeriesPoint], quantity: str) -> str:
    headers = ["nodes", f"measured {quantity}", f"paper {quantity}"]
    rows = [
        [p.n_nodes, f"{p.measured:.2f}", f"{p.paper:.2f}" if p.paper else None]
        for p in points
    ]
    return ascii_table(headers, rows)


# ----------------------------------------------------------------------
# E5: Fig. 3 semantics -- the propagated source voltage converging to VDD
# ----------------------------------------------------------------------
@dataclass
class Fig3Trace:
    """Per-outer-iteration trajectory of the VP boundary state."""

    max_vdiff: list[float] = field(default_factory=list)
    probe_propagated: list[float] = field(default_factory=list)
    probe_v0: list[float] = field(default_factory=list)
    v_pin: float = 0.0
    converged: bool = False

    def monotone_after(self, k: int = 1) -> bool:
        """True when ``max |Vdiff|`` is non-increasing from iteration
        ``k`` on (the paper's VDA principle)."""
        tail = self.max_vdiff[k:]
        return all(b <= a * (1 + 1e-12) for a, b in zip(tail, tail[1:]))


def fig3_trace(
    stack: PowerGridStack,
    probe_pillar: int = 0,
    config: VPConfig | None = None,
) -> Fig3Trace:
    """Run VP while recording the propagated source voltage of one pillar
    (Fig. 3's V0 + sum I_k R_TSV) every outer iteration."""
    from repro.core.vda import VDAPolicy as _VDAPolicy

    config = config or VPConfig()
    trace = Fig3Trace(v_pin=stack.v_pin)

    class _RecordingPolicy(_VDAPolicy):
        """Wraps the configured VDA policy to observe v0 per iteration."""

        def __init__(self, inner):
            self.inner = inner

        def reset(self, n):
            self.inner.reset(n)

        def update(self, v0, residual):
            trace.probe_v0.append(float(v0[probe_pillar]))
            trace.probe_propagated.append(
                float(stack.v_pin - residual[probe_pillar])
            )
            trace.max_vdiff.append(float(np.max(np.abs(residual))))
            return self.inner.update(v0, residual)

    from dataclasses import replace

    solver = VoltagePropagationSolver(stack, replace(config))
    base = solver._resolve_vda_policy()
    solver.config.vda = _RecordingPolicy(base)
    result = solver.solve()
    # The converged final state is not passed through VDA; append it.
    trace.max_vdiff.append(result.max_vdiff)
    trace.converged = result.converged
    return trace


# ----------------------------------------------------------------------
# E10: Fig. 2 phase split
# ----------------------------------------------------------------------
def phase_breakdown(
    stack: PowerGridStack, config: VPConfig | None = None
) -> dict[str, float]:
    """Seconds spent in each VP phase (CVN / TSV current / propagation /
    VDA), matching the pseudocode structure of Fig. 2."""
    solver = VoltagePropagationSolver(stack, config or VPConfig())
    result = solver.solve()
    breakdown = dict(result.stats.phase_seconds)
    breakdown["total"] = result.stats.solve_seconds
    breakdown["outer_iterations"] = float(result.outer_iterations)
    return breakdown
