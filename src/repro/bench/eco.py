"""ECO incremental re-analysis benchmark harness and report.

The baseline for an ``N``-candidate edit sweep is the loop a user would
otherwise write: apply each candidate to the stack, build a fresh solver
(matrix assembly + plane LU + setup), and solve.  The incremental engine
evaluates every candidate against the *pinned* base factors via
Sherman-Morrison-Woodbury updates, replacing the per-candidate
re-factorization pipeline with a few back-substitutions of the update
columns.

Two speedups come out of one comparison, and the report keeps them
separate because they answer different questions:

* ``refactorize_speedup`` -- per-candidate re-factorization pipeline
  cost (assembly + LU + solver setup) over per-candidate incremental
  update preparation (the ``Z`` back-substitutions + capacitance
  factors).  This is the work the SMW update *eliminates*; target
  >= 10x.
* ``end_to_end_speedup`` -- the whole incremental sweep against the
  extrapolated per-candidate loop.  Both paths run the *identical*
  lockstep outer iterations (that is where the rtol <= 1e-10 parity
  comes from), so this ratio is diluted by the solve work they share
  and is reported for honesty, not asserted.

Because the baseline genuinely re-factorizes, timing all ``N``
candidates would dominate the benchmark's own wall-clock; the harness
times an evenly spaced sample and extrapolates (the per-candidate cost
is constant by construction).  The sampled direct solves double as the
parity references.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.bench.reporting import ascii_table, write_csv, write_json
from repro.core.batch import BatchedVPSolver
from repro.eco.edits import EcoCandidate
from repro.eco.session import EcoConfig, EcoReport, EcoSession
from repro.grid.stack3d import PowerGridStack

ECO_BENCH_HEADERS = [
    "candidates", "scenarios", "eco_s", "per_cand_ms", "update_ms",
    "refactor_ms", "refactor_x", "end_to_end_x", "parity_rel_err",
    "factorizations",
]


@dataclass
class EcoBenchReport:
    """Everything one incremental-vs-refactorize comparison produced."""

    stack_name: str
    n_nodes: int
    n_candidates: int
    n_scenarios: int
    report: EcoReport = field(repr=False)
    eval_seconds: float = 0.0
    #: Incremental update preparation inside ``eval_seconds``: the fused
    #: ``Z`` back-substitutions plus per-candidate capacitance factors.
    update_seconds: float = 0.0
    #: ``planes.factorizations`` obs delta across :meth:`EcoSession.evaluate`
    #: -- the zero-factorization contract, measured not assumed.
    eval_factorizations: int = 0
    baseline_samples: int = 0
    #: Sampled per-candidate pipeline cost, split into the part the SMW
    #: update replaces (apply + assembly + LU + solver setup) ...
    baseline_factor_seconds: float = 0.0
    #: ... and the lockstep solve both approaches run identically.
    baseline_solve_seconds: float = 0.0
    max_parity_rel_error: float | None = None

    @property
    def per_candidate_seconds(self) -> float:
        return self.eval_seconds / max(self.n_candidates, 1)

    @property
    def update_per_candidate(self) -> float:
        return self.update_seconds / max(self.n_candidates, 1)

    @property
    def baseline_factor_per_candidate(self) -> float | None:
        if self.baseline_samples == 0:
            return None
        return self.baseline_factor_seconds / self.baseline_samples

    @property
    def baseline_per_candidate(self) -> float | None:
        if self.baseline_samples == 0:
            return None
        return (
            self.baseline_factor_seconds + self.baseline_solve_seconds
        ) / self.baseline_samples

    @property
    def baseline_seconds_estimated(self) -> float | None:
        per = self.baseline_per_candidate
        return None if per is None else per * self.n_candidates

    @property
    def refactorize_speedup(self) -> float | None:
        """Re-factorization pipeline cost over incremental update prep,
        per candidate -- the asserted >= 10x contract."""
        factor = self.baseline_factor_per_candidate
        if factor is None:
            return None
        return factor / max(self.update_per_candidate, 1e-12)

    @property
    def end_to_end_speedup(self) -> float | None:
        estimated = self.baseline_seconds_estimated
        if estimated is None:
            return None
        return estimated / max(self.eval_seconds, 1e-12)

    def row(self) -> list:
        factor = self.baseline_factor_per_candidate
        return [
            self.n_candidates,
            self.n_scenarios,
            self.eval_seconds,
            self.per_candidate_seconds * 1e3,
            self.update_per_candidate * 1e3,
            None if factor is None else factor * 1e3,
            self.refactorize_speedup,
            self.end_to_end_speedup,
            self.max_parity_rel_error,
            self.eval_factorizations,
        ]

    def table(self) -> str:
        return ascii_table(ECO_BENCH_HEADERS, [self.row()])

    def summary(self) -> str:
        lines = [
            f"{self.stack_name or 'stack'}: {self.n_nodes} nodes, "
            f"{self.n_candidates} candidates x {self.n_scenarios} "
            f"scenario(s) in {self.eval_seconds:.3f}s "
            f"({self.per_candidate_seconds * 1e3:.1f} ms/candidate, "
            f"{self.eval_factorizations} factorizations during evaluation)",
        ]
        if self.refactorize_speedup is not None:
            lines.append(
                f"re-factorization pipeline "
                f"{self.baseline_factor_per_candidate * 1e3:.0f} ms/candidate "
                f"vs incremental update prep "
                f"{self.update_per_candidate * 1e3:.1f} ms/candidate -> "
                f"x{self.refactorize_speedup:.1f} "
                f"({self.baseline_samples} sampled)"
            )
            lines.append(
                f"end-to-end sweep {self.eval_seconds:.2f}s vs extrapolated "
                f"per-candidate loop {self.baseline_seconds_estimated:.2f}s "
                f"-> x{self.end_to_end_speedup:.1f} (both paths run "
                f"identical lockstep solve iterations)"
            )
        if self.max_parity_rel_error is not None:
            lines.append(
                f"worst-drop parity vs direct re-solve: "
                f"{self.max_parity_rel_error:.3e} rel "
                f"({self.baseline_samples} candidates spot-checked)"
            )
        return "\n".join(lines)

    def payload(self) -> dict:
        return {
            "stack": self.stack_name,
            "n_nodes": self.n_nodes,
            "n_candidates": self.n_candidates,
            "n_scenarios": self.n_scenarios,
            "eval_seconds": self.eval_seconds,
            "per_candidate_seconds": self.per_candidate_seconds,
            "update_seconds": self.update_seconds,
            "update_per_candidate_seconds": self.update_per_candidate,
            "eval_factorizations": self.eval_factorizations,
            "baseline_samples": self.baseline_samples,
            "baseline_factor_seconds": self.baseline_factor_seconds,
            "baseline_solve_seconds": self.baseline_solve_seconds,
            "baseline_factor_per_candidate_seconds": (
                self.baseline_factor_per_candidate
            ),
            "baseline_per_candidate_seconds": self.baseline_per_candidate,
            "baseline_seconds_estimated": self.baseline_seconds_estimated,
            "refactorize_speedup": self.refactorize_speedup,
            "end_to_end_speedup": self.end_to_end_speedup,
            "max_parity_rel_error": self.max_parity_rel_error,
            "ranking": self.report.payload(),
        }

    def to_csv(self, path) -> None:
        write_csv(path, ECO_BENCH_HEADERS, [self.row()])

    def to_json(self, path) -> None:
        write_json(path, self.payload())


def run_eco_benchmark(
    stack: PowerGridStack,
    candidates: list[EcoCandidate],
    *,
    scenarios=None,
    config: EcoConfig | None = None,
    compare_refactorize: bool = True,
    baseline_samples: int = 8,
) -> EcoBenchReport:
    """Evaluate ``candidates`` incrementally; optionally time the
    per-candidate re-factorization loop on an evenly spaced sample and
    spot-check worst-drop parity against those direct re-solves.

    The factorization counter-assert deliberately brackets *only* the
    incremental evaluation: the session's own base priming happens
    before the snapshot, and the baseline re-solves (which must
    factorize -- they are the reference) run after.
    """
    config = config or EcoConfig()
    with EcoSession(stack, scenarios=scenarios, config=config) as session:
        session.baseline_drops()  # prime the base solve outside the timing
        metrics_before = obs.metrics().snapshot()
        t0 = time.perf_counter()
        report = session.evaluate(candidates)
        eval_seconds = time.perf_counter() - t0
        delta = obs.snapshot_delta(metrics_before, obs.metrics().snapshot())
        eval_factorizations = int(
            delta["counters"].get("planes.factorizations", 0)
        )

        bench = EcoBenchReport(
            stack_name=stack.name,
            n_nodes=stack.n_nodes,
            n_candidates=len(report.rows),
            n_scenarios=len(report.scenario_names),
            report=report,
            eval_seconds=eval_seconds,
            update_seconds=report.result.stats.setup_seconds,
            eval_factorizations=eval_factorizations,
        )
        if compare_refactorize and report.rows:
            subset = np.unique(
                np.linspace(
                    0,
                    len(report.rows) - 1,
                    min(baseline_samples, len(report.rows)),
                ).astype(int)
            )
            solver_config = config.solver_config()
            worst = 0.0
            for k in subset:
                row = report.rows[int(k)]
                t0 = time.perf_counter()
                solver = BatchedVPSolver(
                    row.candidate.apply(stack),
                    session.scenarios,
                    solver_config,
                )
                t1 = time.perf_counter()
                reference = solver.solve().worst_ir_drop()
                t2 = time.perf_counter()
                bench.baseline_factor_seconds += t1 - t0
                bench.baseline_solve_seconds += t2 - t1
                scale = max(float(np.abs(reference).max()), 1e-30)
                rel = float(
                    np.abs(row.scenario_drops - reference).max() / scale
                )
                row.verified = True
                row.verify_error = rel
                worst = max(worst, rel)
            bench.baseline_samples = int(subset.size)
            bench.max_parity_rel_error = worst
    return bench


__all__ = ["ECO_BENCH_HEADERS", "EcoBenchReport", "run_eco_benchmark"]
