"""Monte Carlo variation-analysis benchmark harness and reports.

The honest baseline for an ``N``-sample variation study is the loop a
user would otherwise write: materialize each sampled stack and run
``solve_vp(...)`` from scratch, paying one plane factorization (and a
full setup) per sample.  The factor-reuse driver
(:func:`repro.stochastic.run_monte_carlo`) batches same-geometry samples
against the cached baseline factors instead; the expected win grows with
the sample count and the factorization/back-substitution cost ratio
(target: >= 2x at 64 samples on a paper-scale grid, with zero
refactorizations on TSV-only sweeps).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import ascii_table, write_csv, write_json
from repro.grid.stack3d import PowerGridStack
from repro.stochastic.models import VariationSpec
from repro.stochastic.montecarlo import (
    MonteCarloConfig,
    MonteCarloResult,
    naive_monte_carlo,
    run_monte_carlo,
)

MC_QUANTILE_HEADERS = ["quantile", "worst_drop_mV", "ci_low_mV", "ci_high_mV"]


@dataclass
class MCReport:
    """Everything an ``repro mc`` run produced, renderable as
    table/CSV/JSON."""

    stack_name: str
    n_nodes: int
    result: MonteCarloResult
    mc_seconds: float
    naive_seconds: float | None = None
    max_parity_error: float | None = None
    parity_samples: int = 0

    @property
    def speedup(self) -> float | None:
        if self.naive_seconds is None:
            return None
        return self.naive_seconds / max(self.mc_seconds, 1e-12)

    def quantile_rows(self) -> list[list]:
        return [q.row() for q in self.result.quantiles]

    def table(self) -> str:
        return ascii_table(MC_QUANTILE_HEADERS, self.quantile_rows())

    def summary(self) -> str:
        result = self.result
        stats = result.stats
        lines = [
            f"{self.stack_name or 'stack'}: {self.n_nodes} nodes, "
            f"{result.n_samples} samples in {stats.n_batches} batches, "
            f"{self.mc_seconds:.3f}s "
            f"(baseline factorizations {stats.baseline_factorizations}, "
            f"refactorizations {stats.refactorizations})",
            f"worst drop: mean {result.mean_worst_drop * 1e3:.4f} mV, "
            f"sigma {result.std_worst_drop * 1e3:.4f} mV; "
            f"{int(result.converged.sum())}/{result.n_samples} converged",
        ]
        if result.violation is not None:
            v = result.violation
            lines.append(
                f"P(drop > {v.budget * 1e3:g} mV) = {v.probability:.4f} "
                f"[{v.ci_low:.4f}, {v.ci_high:.4f}] "
                f"({v.violations}/{v.trials} samples)"
            )
        if self.naive_seconds is not None:
            lines.append(
                f"naive per-sample loop {self.naive_seconds:.3f}s -> "
                f"speedup x{self.speedup:.1f}, max worst-drop parity error "
                f"{(self.max_parity_error or 0.0) * 1e3:.4f} mV "
                f"({self.parity_samples} samples spot-checked)"
            )
        return "\n".join(lines)

    def payload(self) -> dict:
        result = self.result
        stats = result.stats
        out = {
            "stack": self.stack_name,
            "n_nodes": self.n_nodes,
            "spec": result.spec,
            "seed": result.seed,
            "n_samples": result.n_samples,
            "converged_samples": int(result.converged.sum()),
            "mean_worst_drop_v": result.mean_worst_drop,
            "std_worst_drop_v": result.std_worst_drop,
            "quantiles": [
                {
                    "q": q.q,
                    "worst_drop_v": q.value,
                    "ci_low_v": q.ci_low,
                    "ci_high_v": q.ci_high,
                    "confidence": q.confidence,
                }
                for q in result.quantiles
            ],
            "convergence": result.convergence,
            "mc_seconds": self.mc_seconds,
            "stats": {
                "n_batches": stats.n_batches,
                "baseline_factorizations": stats.baseline_factorizations,
                "refactorizations": stats.refactorizations,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "column_solves": stats.column_solves,
                "setup_seconds": stats.setup_seconds,
                "solve_seconds": stats.solve_seconds,
            },
        }
        if result.violation is not None:
            v = result.violation
            out["violation"] = {
                "budget_v": v.budget,
                "probability": v.probability,
                "ci_low": v.ci_low,
                "ci_high": v.ci_high,
                "violations": v.violations,
                "trials": v.trials,
                "confidence": v.confidence,
            }
        if self.naive_seconds is not None:
            out["naive_seconds"] = self.naive_seconds
            out["speedup"] = self.speedup
            out["max_parity_error_v"] = self.max_parity_error
            out["parity_samples"] = self.parity_samples
        return out

    def to_csv(self, path) -> None:
        """Quantile table -- the sign-off numbers with their CIs, in the
        millivolt units the headers promise (same rows as the table)."""
        write_csv(path, MC_QUANTILE_HEADERS, self.quantile_rows())

    def to_json(self, path) -> None:
        write_json(path, self.payload())


def run_mc_benchmark(
    stack: PowerGridStack,
    spec: VariationSpec,
    n_samples: int,
    *,
    seed: int | None = None,
    config: MonteCarloConfig | None = None,
    compare_naive: bool = False,
    parity_subset: int = 4,
) -> MCReport:
    """Run the factor-reuse Monte Carlo driver; optionally time the naive
    per-sample ``solve_vp`` loop on the *same draws* and spot-check
    per-sample worst-drop parity on a subset."""
    config = config or MonteCarloConfig()
    draws = spec.sample(stack, n_samples, np.random.default_rng(seed))

    t0 = time.perf_counter()
    result = run_monte_carlo(
        stack, spec, n_samples, seed=seed, config=config, draws=draws
    )
    mc_seconds = time.perf_counter() - t0

    report = MCReport(
        stack_name=stack.name,
        n_nodes=stack.n_nodes,
        result=result,
        mc_seconds=mc_seconds,
    )
    if compare_naive:
        t0 = time.perf_counter()
        naive_worst = naive_monte_carlo(
            stack,
            draws,
            outer_tol=config.outer_tol,
            max_outer=config.max_outer,
            v0_init=config.v0_init,
        )
        report.naive_seconds = time.perf_counter() - t0
        # The timed loop already solved every sample standalone; parity
        # is reported over an explicit subset to keep the contract (and
        # the assertion cost) well-defined even if the baseline timing
        # is ever swapped for a cheaper estimate.
        subset = np.linspace(
            0, n_samples - 1, min(parity_subset, n_samples)
        ).astype(int)
        report.parity_samples = subset.size
        report.max_parity_error = float(
            np.max(np.abs(result.worst_drops[subset] - naive_worst[subset]))
        )
    return report
