"""Benchmark harness: circuits C0-C5, method runners, and the per-table /
per-figure experiment drivers indexed in DESIGN.md."""

from repro.bench.circuits import (
    CIRCUITS,
    PAPER_TABLE1,
    CircuitSpec,
    PaperRow,
    build_circuit,
    default_circuit_names,
)
from repro.bench.methods import (
    MethodResult,
    run_vp,
    run_pcg,
    run_spice,
    run_direct,
)
from repro.bench.table1 import Table1Result, Table1Row, run_table1
from repro.bench.reporting import ascii_table, markdown_table

__all__ = [
    "CIRCUITS",
    "PAPER_TABLE1",
    "CircuitSpec",
    "PaperRow",
    "build_circuit",
    "default_circuit_names",
    "MethodResult",
    "run_vp",
    "run_pcg",
    "run_spice",
    "run_direct",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "ascii_table",
    "markdown_table",
]
