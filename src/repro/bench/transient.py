"""Transient-sweep benchmark: batched engine vs the sequential loop.

The honest baseline for a transient sweep is what users would otherwise
write -- one :class:`~repro.core.transient.TransientVPSolver` per
scenario (companion factorization included) stepped through the whole
waveform with ``inner="direct"``.  The batched engine factorizes once
per ``(plane_scale, cap_scale)`` group and advances all scenarios of a
group through multi-column back-substitutions, so the expected win
grows with the scenario count, the step count, and the
factorization/back-substitution cost ratio (target: >= 3x on a
16-scenario droop sweep of a Table-1 mid-size grid).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.reporting import ascii_table, write_csv, write_json
from repro.core.planes import PlaneFactorCache
from repro.core.transient import TransientVPSolver, normalize_capacitance
from repro.core.transient_batch import (
    BatchedTransientConfig,
    BatchedTransientResult,
    BatchedTransientSolver,
)
from repro.core.vp import VPConfig
from repro.grid.stack3d import PowerGridStack
from repro.scenarios.spec import ScenarioSet

TRANSIENT_HEADERS = [
    "scenario",
    "stimulus",
    "load_scale",
    "cap_scale",
    "worst_droop_mV",
    "v_min_mV",
    "outer_total",
    "settled_step",
]


@dataclass
class TransientOutcome:
    """One scenario's droop summary."""

    scenario: str
    stimulus: str
    load_scale: object
    cap_scale: object
    worst_droop: float
    min_voltage: float
    outer_total: int
    settled_step: int

    def row(self) -> list:
        return [
            self.scenario,
            self.stimulus,
            self.load_scale,
            self.cap_scale,
            f"{self.worst_droop * 1e3:.4f}",
            f"{self.min_voltage * 1e3:.2f}",
            self.outer_total,
            self.settled_step if self.settled_step >= 0 else "-",
        ]


@dataclass
class TransientSweepReport:
    """Everything a transient sweep produced, renderable as
    table/CSV/JSON."""

    stack_name: str
    n_nodes: int
    n_scenarios: int
    n_steps: int
    dt: float
    outcomes: list[TransientOutcome]
    batched_setup_seconds: float
    batched_solve_seconds: float
    n_groups: int
    factorizations: int
    column_steps: int
    sequential_seconds: float | None = None
    max_parity_error: float | None = None
    #: ``(S,)`` worst droops of the sequential oracle (set by
    #: ``compare_sequential`` -- what the parity assertions compare the
    #: batched :attr:`BatchedTransientResult.worst_droop` against).
    sequential_droops: np.ndarray | None = None
    batched_result: BatchedTransientResult | None = field(
        default=None, repr=False
    )

    @property
    def batched_seconds(self) -> float:
        return self.batched_setup_seconds + self.batched_solve_seconds

    @property
    def speedup(self) -> float | None:
        if self.sequential_seconds is None:
            return None
        return self.sequential_seconds / max(self.batched_seconds, 1e-12)

    def table(self) -> str:
        return ascii_table(TRANSIENT_HEADERS, [o.row() for o in self.outcomes])

    def summary(self) -> str:
        lines = [
            f"{self.stack_name or 'stack'}: {self.n_nodes} nodes, "
            f"{self.n_scenarios} scenarios x {self.n_steps} steps "
            f"(dt {self.dt:g}s), batched {self.batched_seconds:.3f}s "
            f"(setup {self.batched_setup_seconds:.3f}s + solve "
            f"{self.batched_solve_seconds:.3f}s), "
            f"{self.n_groups} factor group(s), "
            f"{self.factorizations} factorization(s)"
        ]
        if self.sequential_seconds is not None:
            lines.append(
                f"sequential loop {self.sequential_seconds:.3f}s -> "
                f"speedup x{self.speedup:.1f}, max parity error "
                f"{(self.max_parity_error or 0.0) * 1e3:.4f} mV"
            )
        return "\n".join(lines)

    def records(self) -> list[dict]:
        return [
            {
                "scenario": o.scenario,
                "stimulus": o.stimulus,
                "load_scale": o.load_scale,
                "cap_scale": o.cap_scale,
                "worst_droop_v": o.worst_droop,
                "min_voltage_v": o.min_voltage,
                "outer_total": o.outer_total,
                "settled_step": o.settled_step,
            }
            for o in self.outcomes
        ]

    def to_csv(self, path) -> None:
        headers = [
            "scenario",
            "stimulus",
            "load_scale",
            "cap_scale",
            "worst_droop_v",
            "min_voltage_v",
            "outer_total",
            "settled_step",
        ]
        rows = [
            [
                o.scenario,
                o.stimulus,
                o.load_scale,
                o.cap_scale,
                o.worst_droop,
                o.min_voltage,
                o.outer_total,
                o.settled_step,
            ]
            for o in self.outcomes
        ]
        write_csv(path, headers, rows)

    def to_json(self, path) -> None:
        payload = {
            "stack": self.stack_name,
            "n_nodes": self.n_nodes,
            "n_scenarios": self.n_scenarios,
            "n_steps": self.n_steps,
            "dt_seconds": self.dt,
            "batched_setup_seconds": self.batched_setup_seconds,
            "batched_solve_seconds": self.batched_solve_seconds,
            "n_factor_groups": self.n_groups,
            "factorizations": self.factorizations,
            "column_steps": self.column_steps,
            "sequential_seconds": self.sequential_seconds,
            "speedup": self.speedup,
            "max_parity_error_v": self.max_parity_error,
            "scenarios": self.records(),
        }
        write_json(path, payload)


def _sequential_transient_config(config: BatchedTransientConfig) -> VPConfig:
    """The single-scenario configuration equivalent to a batched run."""
    return VPConfig(
        inner="direct",
        outer_tol=config.outer_tol,
        max_outer=config.max_outer,
        vda=config.vda,
        eta=config.eta,
        v0_init=config.v0_init,
        record_history=False,
    )


def run_sequential_transient(
    stack: PowerGridStack,
    scenarios,
    capacitance,
    dt: float,
    t_end: float,
    config: BatchedTransientConfig | None = None,
    *,
    probes=(),
) -> list:
    """The per-scenario baseline loop: apply each scenario to the stack,
    build a fresh :class:`~repro.core.transient.TransientVPSolver`
    (paying its companion factorization), and step the waveform.

    Returns the per-scenario
    :class:`~repro.core.transient.TransientResult` list in scenario
    order -- the parity oracle the batched engine is asserted against.
    """
    scenarios = ScenarioSet.ensure(scenarios)
    config = config or BatchedTransientConfig()
    base_caps = normalize_capacitance(stack, capacitance)
    vp_config = _sequential_transient_config(config)
    results = []
    for scenario in scenarios:
        applied = scenario.apply(stack)
        cap_scales = scenario.tier_cap_scales(stack.n_tiers)
        caps = [c * k for c, k in zip(base_caps, cap_scales)]
        solver = TransientVPSolver(applied, caps, dt, vp_config)
        stimulus = None
        if scenario.stimulus is not None:
            base_loads = [tier.loads.copy() for tier in applied.tiers]
            stimulus = scenario.stimulus.as_stimulus(base_loads)
        results.append(solver.run(t_end, stimulus, probes=probes))
    return results


def run_transient_sweep(
    stack: PowerGridStack,
    scenarios,
    capacitance,
    dt: float,
    t_end: float,
    config: BatchedTransientConfig | None = None,
    *,
    probes=(),
    compare_sequential: bool = False,
    factor_cache: PlaneFactorCache | None = None,
) -> TransientSweepReport:
    """Run a transient scenario sweep with the batched engine; optionally
    time the per-scenario sequential loop on the same sweep and
    cross-check the worst-voltage waveforms."""
    scenarios = ScenarioSet.ensure(scenarios)
    config = config or BatchedTransientConfig()

    solver = BatchedTransientSolver(
        stack, scenarios, capacitance, dt, config, factor_cache=factor_cache
    )
    result = solver.run(t_end, probes=probes)

    droops = result.worst_droop
    outcomes = []
    for k, scenario in enumerate(scenarios):
        record = scenario.describe()
        outcomes.append(
            TransientOutcome(
                scenario=scenario.name,
                stimulus=record.get("stimulus", "-"),
                load_scale=record["load_scale"],
                cap_scale=record.get("cap_scale", 1.0),
                worst_droop=float(droops[k]),
                min_voltage=float(result.worst_voltage[:, k].min()),
                outer_total=int(result.outer_iterations[:, k].sum()),
                settled_step=int(result.settled_step[k]),
            )
        )

    report = TransientSweepReport(
        stack_name=stack.name,
        n_nodes=stack.n_nodes,
        n_scenarios=len(scenarios),
        n_steps=result.stats.n_steps,
        dt=dt,
        outcomes=outcomes,
        batched_setup_seconds=result.stats.setup_seconds,
        batched_solve_seconds=result.stats.solve_seconds,
        n_groups=result.stats.n_groups,
        factorizations=result.stats.factorizations,
        column_steps=result.stats.column_steps,
        batched_result=result,
    )

    if compare_sequential:
        t0 = time.perf_counter()
        sequential = run_sequential_transient(
            stack, scenarios, capacitance, dt, t_end, config, probes=probes
        )
        report.sequential_seconds = time.perf_counter() - t0
        parity = 0.0
        for k, seq in enumerate(sequential):
            parity = max(
                parity,
                float(
                    np.max(
                        np.abs(seq.worst_voltage - result.worst_voltage[:, k])
                    )
                ),
            )
        report.max_parity_error = parity
        report.sequential_droops = np.array(
            [seq.worst_droop for seq in sequential]
        )
    return report
