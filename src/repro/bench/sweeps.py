"""Scenario-sweep benchmark: batched engine vs the sequential loop.

The honest baseline for a sweep is what users would otherwise write --
``solve_vp(scenario.apply(stack), inner="direct")`` per scenario, paying
one plane factorization (and stack materialization) per design point.
The batched engine factorizes once and back-substitutes all scenario
columns together, so the expected win grows with the scenario count and
the factorization/back-substitution cost ratio (target: >= 3x on a
16-scenario sweep of a Table-1 mid-size grid).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.reporting import ascii_table, write_csv, write_json
from repro.core.batch import BatchedVPConfig, BatchedVPResult, BatchedVPSolver
from repro.core.vp import VPConfig, VoltagePropagationSolver
from repro.grid.stack3d import PowerGridStack
from repro.scenarios.spec import ScenarioSet

SWEEP_HEADERS = [
    "scenario",
    "load_scale",
    "r_tsv_scale",
    "plane_scale",
    "converged",
    "outer_iters",
    "max_vdiff_mV",
    "worst_drop_mV",
]


@dataclass
class SweepOutcome:
    """One scenario's solution summary."""

    scenario: str
    load_scale: object
    r_tsv_scale: float
    converged: bool
    outer_iterations: int
    max_vdiff: float
    worst_ir_drop: float
    plane_scale: object = 1.0

    def row(self) -> list:
        return [
            self.scenario,
            self.load_scale,
            self.r_tsv_scale,
            self.plane_scale,
            "yes" if self.converged else "NO",
            self.outer_iterations,
            f"{self.max_vdiff * 1e3:.4f}",
            f"{self.worst_ir_drop * 1e3:.4f}",
        ]


@dataclass
class SweepReport:
    """Everything a sweep run produced, renderable as table/CSV/JSON."""

    stack_name: str
    n_nodes: int
    n_scenarios: int
    outcomes: list[SweepOutcome]
    batched_setup_seconds: float
    batched_solve_seconds: float
    sequential_seconds: float | None = None
    max_parity_error: float | None = None
    batched_result: BatchedVPResult | None = field(default=None, repr=False)

    @property
    def batched_seconds(self) -> float:
        return self.batched_setup_seconds + self.batched_solve_seconds

    @property
    def speedup(self) -> float | None:
        if self.sequential_seconds is None:
            return None
        return self.sequential_seconds / max(self.batched_seconds, 1e-12)

    def table(self) -> str:
        return ascii_table(SWEEP_HEADERS, [o.row() for o in self.outcomes])

    def summary(self) -> str:
        lines = [
            f"{self.stack_name or 'stack'}: {self.n_nodes} nodes, "
            f"{self.n_scenarios} scenarios, batched "
            f"{self.batched_seconds:.3f}s "
            f"(setup {self.batched_setup_seconds:.3f}s + solve "
            f"{self.batched_solve_seconds:.3f}s)"
        ]
        if self.sequential_seconds is not None:
            lines.append(
                f"sequential loop {self.sequential_seconds:.3f}s -> "
                f"speedup x{self.speedup:.1f}, max parity error "
                f"{(self.max_parity_error or 0.0) * 1e3:.4f} mV"
            )
        return "\n".join(lines)

    def records(self) -> list[dict]:
        return [
            {
                "scenario": o.scenario,
                "load_scale": o.load_scale,
                "r_tsv_scale": o.r_tsv_scale,
                "plane_scale": o.plane_scale,
                "converged": o.converged,
                "outer_iterations": o.outer_iterations,
                "max_vdiff_v": o.max_vdiff,
                "worst_ir_drop_v": o.worst_ir_drop,
            }
            for o in self.outcomes
        ]

    def to_csv(self, path) -> None:
        rows = [
            [
                o.scenario,
                o.load_scale,
                o.r_tsv_scale,
                o.plane_scale,
                o.converged,
                o.outer_iterations,
                o.max_vdiff,
                o.worst_ir_drop,
            ]
            for o in self.outcomes
        ]
        write_csv(path, SWEEP_HEADERS, rows)

    def to_json(self, path) -> None:
        payload = {
            "stack": self.stack_name,
            "n_nodes": self.n_nodes,
            "n_scenarios": self.n_scenarios,
            "batched_setup_seconds": self.batched_setup_seconds,
            "batched_solve_seconds": self.batched_solve_seconds,
            "sequential_seconds": self.sequential_seconds,
            "speedup": self.speedup,
            "max_parity_error_v": self.max_parity_error,
            "scenarios": self.records(),
        }
        write_json(path, payload)


def _sequential_config(config: BatchedVPConfig) -> VPConfig:
    """The single-scenario configuration equivalent to a batched run."""
    return VPConfig(
        inner="direct",
        outer_tol=config.outer_tol,
        max_outer=config.max_outer,
        vda=config.vda,
        eta=config.eta,
        v0_init=config.v0_init,
        record_history=False,
    )


def run_sweep(
    stack: PowerGridStack,
    scenarios,
    config: BatchedVPConfig | None = None,
    *,
    compare_sequential: bool = False,
) -> SweepReport:
    """Solve a scenario set with the batched engine; optionally time the
    per-scenario ``solve_vp`` loop on the same sweep and cross-check the
    voltages."""
    scenarios = ScenarioSet.ensure(scenarios)
    config = config or BatchedVPConfig()

    solver = BatchedVPSolver(stack, scenarios, config)
    result = solver.solve()

    drops = result.worst_ir_drop()
    outcomes = []
    for k, scenario in enumerate(scenarios):
        record = scenario.describe()
        outcomes.append(
            SweepOutcome(
                scenario=scenario.name,
                load_scale=record["load_scale"],
                r_tsv_scale=record["r_tsv_scale"],
                plane_scale=record.get("plane_scale", 1.0),
                converged=bool(result.converged[k]),
                outer_iterations=int(result.outer_iterations[k]),
                max_vdiff=float(result.max_vdiff[k]),
                worst_ir_drop=float(drops[k]),
            )
        )

    report = SweepReport(
        stack_name=stack.name,
        n_nodes=stack.n_nodes,
        n_scenarios=len(scenarios),
        outcomes=outcomes,
        batched_setup_seconds=result.stats.setup_seconds,
        batched_solve_seconds=result.stats.solve_seconds,
        batched_result=result,
    )

    if compare_sequential:
        parity = 0.0
        t0 = time.perf_counter()
        for k, scenario in enumerate(scenarios):
            seq = VoltagePropagationSolver(
                scenario.apply(stack), _sequential_config(config)
            ).solve()
            parity = max(
                parity,
                float(np.max(np.abs(seq.voltages - result.scenario_voltages(k)))),
            )
        report.sequential_seconds = time.perf_counter() - t0
        report.max_parity_error = parity
    return report
