"""Phase-attributed profile rendering for ``repro profile`` / ``--profile``.

Turns one telemetry session (spans + metrics) into the human-readable
summary the CLI prints: a span table ordered by self time, then the
counter/gauge/histogram tallies.  ``repro.obs`` is the bottom layer of
the tree (core/linalg/bench all import it), so the table renderer is a
local copy of the ``bench.reporting`` style rather than an import of it.
"""

from __future__ import annotations

from repro.obs.export import span_summary
from repro.obs.session import Telemetry
from repro.units import format_seconds


def _stringify(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def _ascii_table(headers: list[str], rows: list[list]) -> str:
    text_rows = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)),
        "  ".join("-" * widths[k] for k in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def render_profile(tel: Telemetry) -> str:
    """Summary text for a finished telemetry session."""
    sections: list[str] = []

    summary = span_summary(tel.tracer.events)
    if summary:
        rows = [
            [
                name,
                row["count"],
                format_seconds(row["total_s"]),
                format_seconds(row["self_s"]),
                format_seconds(row["min_s"]),
                format_seconds(row["max_s"]),
            ]
            for name, row in sorted(
                summary.items(), key=lambda kv: kv[1]["self_s"], reverse=True
            )
        ]
        sections.append(
            "spans (by self time)\n"
            + _ascii_table(["span", "count", "total", "self", "min", "max"], rows)
        )

    reg = tel.registry
    if reg.counters:
        rows = [[name, c.value] for name, c in sorted(reg.counters.items())]
        sections.append("counters\n" + _ascii_table(["counter", "value"], rows))
    if reg.gauges:
        rows = [[name, g.value] for name, g in sorted(reg.gauges.items())]
        sections.append("gauges\n" + _ascii_table(["gauge", "value"], rows))
    if reg.histograms:
        rows = [
            [name, h.count, h.mean, h.min, h.max]
            for name, h in sorted(reg.histograms.items())
            if h.count
        ]
        if rows:
            sections.append(
                "histograms\n"
                + _ascii_table(["histogram", "count", "mean", "min", "max"], rows)
            )
    if reg.bucket_histograms:
        rows = []
        for name, family in sorted(reg.bucket_histograms.items()):
            for key, child in sorted(family.children.items()):
                label = name if not key else f"{name}{{{','.join(key)}}}"
                if child.count:
                    rows.append(
                        [label, child.count, child.total / child.count, child.min, child.max]
                    )
        if rows:
            sections.append(
                "latency histograms\n"
                + _ascii_table(["histogram", "count", "mean", "min", "max"], rows)
            )
    if reg.series_store:
        rows = [
            [name, len(s), s.values[-1] if s.values else None]
            for name, s in sorted(reg.series_store.items())
        ]
        sections.append(
            "convergence series\n" + _ascii_table(["series", "points", "last"], rows)
        )

    if not sections:
        return "no telemetry recorded"
    return "\n\n".join(sections)
