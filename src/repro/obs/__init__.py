"""Zero-dependency telemetry: metrics registry, span tracing, exporters.

Public surface (see docs/observability.md):

* :func:`session` / :class:`Telemetry` -- push a profiling session;
  :func:`metrics` / :func:`tracer` read the active one (always present).
  :func:`scoped` overlays a session on the current thread only (how the
  service attributes work to jobs); :func:`current_global` reaches past
  the overlay to the process-wide session.
* :class:`MetricsRegistry` instruments via :func:`add`,
  :func:`set_gauge`, :func:`observe`, :func:`observe_bucket`,
  :func:`add_labeled`, :func:`record_series`, :func:`active_series`.
* :func:`span` / :class:`Stopwatch` for timing; engines with existing
  ``perf_counter`` phase math use ``tracer().add_complete``.
* :mod:`repro.obs.export` -- Chrome trace-event JSON (Perfetto, one lane
  per recording thread), flat CSV round-trip, and :func:`span_summary`
  self-time aggregation.
* :class:`FlightRecorder` -- always-on bounded ring of recent spans
  (the service's crash/timeout trace source).
* :func:`render_prometheus` / :func:`validate_prometheus_text` --
  Prometheus text exposition of a registry snapshot, plus the in-tree
  promtool-style validator the tests use.
* :class:`JsonLogger` -- structured JSON access/job logs with a
  correlation id on every line.
* :func:`render_profile` -- the ``repro profile`` summary table.
"""

from repro.obs.export import (
    chrome_trace,
    read_csv_trace,
    span_summary,
    write_chrome_trace,
    write_csv_trace,
)
from repro.obs.flight import FlightRecorder
from repro.obs.logging import NULL_LOGGER, JsonLogger
from repro.obs.profile import render_profile
from repro.obs.promexport import render_prometheus, validate_prometheus_text
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    LabeledGauge,
    MetricsRegistry,
    Series,
    snapshot_delta,
)
from repro.obs.session import (
    Stopwatch,
    Telemetry,
    active,
    active_series,
    add,
    add_labeled,
    current_global,
    metrics,
    observe,
    observe_bucket,
    record_series,
    scoped,
    session,
    set_gauge,
    span,
    tracer,
)
from repro.obs.trace import NULL_SPAN, SpanEvent, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_LOGGER",
    "NULL_SPAN",
    "BucketHistogram",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "LabeledCounter",
    "LabeledGauge",
    "MetricsRegistry",
    "Series",
    "SpanEvent",
    "Stopwatch",
    "Telemetry",
    "Tracer",
    "active",
    "active_series",
    "add",
    "add_labeled",
    "chrome_trace",
    "current_global",
    "metrics",
    "observe",
    "observe_bucket",
    "read_csv_trace",
    "record_series",
    "render_profile",
    "render_prometheus",
    "scoped",
    "session",
    "set_gauge",
    "snapshot_delta",
    "span",
    "span_summary",
    "tracer",
    "validate_prometheus_text",
    "write_chrome_trace",
    "write_csv_trace",
]
