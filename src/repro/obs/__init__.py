"""Zero-dependency telemetry: metrics registry, span tracing, exporters.

Public surface (see docs/observability.md):

* :func:`session` / :class:`Telemetry` -- push a profiling session;
  :func:`metrics` / :func:`tracer` read the active one (always present).
* :class:`MetricsRegistry` instruments via :func:`add`,
  :func:`set_gauge`, :func:`observe`, :func:`record_series`,
  :func:`active_series`.
* :func:`span` / :class:`Stopwatch` for timing; engines with existing
  ``perf_counter`` phase math use ``tracer().add_complete``.
* :mod:`repro.obs.export` -- Chrome trace-event JSON (Perfetto), flat
  CSV round-trip, and :func:`span_summary` self-time aggregation.
* :func:`render_profile` -- the ``repro profile`` summary table.
"""

from repro.obs.export import (
    chrome_trace,
    read_csv_trace,
    span_summary,
    write_chrome_trace,
    write_csv_trace,
)
from repro.obs.profile import render_profile
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    snapshot_delta,
)
from repro.obs.session import (
    Stopwatch,
    Telemetry,
    active,
    active_series,
    add,
    metrics,
    observe,
    record_series,
    session,
    set_gauge,
    span,
    tracer,
)
from repro.obs.trace import NULL_SPAN, SpanEvent, Tracer

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "SpanEvent",
    "Stopwatch",
    "Telemetry",
    "Tracer",
    "active",
    "active_series",
    "add",
    "chrome_trace",
    "metrics",
    "observe",
    "read_csv_trace",
    "record_series",
    "render_profile",
    "session",
    "set_gauge",
    "snapshot_delta",
    "span",
    "span_summary",
    "tracer",
    "write_chrome_trace",
    "write_csv_trace",
]
