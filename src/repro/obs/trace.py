"""Span tracing: flat completed-span events, nested at export time.

Two recording styles, one event shape:

* ``with tracer.span("factorize", tier=l):`` -- the context-manager form
  for code whose control flow tolerates a ``with`` block.
* ``tracer.add_complete("cvn", t0, dt, tier=l)`` -- the flat form for
  hot solver loops that already keep ``perf_counter`` phase timing;
  they report the (start, duration) pair they measured anyway, with no
  indentation changes to the numeric code.

Both append a :class:`SpanEvent` carrying absolute start and duration.
Because every engine here is single-threaded and spans are timed with
one monotonic clock, containment in time *is* the nesting relation, so
the exporters recover the span tree with a stack walk over events
sorted by start time (see :mod:`repro.obs.export`).  Nothing in the
hot path maintains parent pointers.

When the tracer is disabled, :meth:`Tracer.span` returns the shared
:data:`NULL_SPAN` singleton and :meth:`Tracer.add_complete` returns
immediately -- no per-event allocation on the disabled path.  Engines
additionally hoist ``tr = obs.tracer()`` and guard bulk instrumentation
with ``if tr.enabled:`` so the disabled cost is one attribute read.
"""

from __future__ import annotations

import time


class SpanEvent:
    """One completed span: name, absolute start (ns), duration (ns)."""

    __slots__ = ("name", "t0_ns", "dur_ns", "attrs")

    def __init__(self, name: str, t0_ns: int, dur_ns: int, attrs: dict | None):
        self.name = name
        self.t0_ns = t0_ns
        self.dur_ns = dur_ns
        self.attrs = attrs

    @property
    def end_ns(self) -> int:
        return self.t0_ns + self.dur_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, t0={self.t0_ns}, dur={self.dur_ns})"


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """Live context-manager span; records its event on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict | None):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        self._t0_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter_ns()
        self._tracer.events.append(
            SpanEvent(self._name, self._t0_ns, t1 - self._t0_ns, self._attrs)
        )
        return False


class Tracer:
    """Collects :class:`SpanEvent` records when enabled."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: list[SpanEvent] = []

    def span(self, name: str, **attrs):
        """Context manager timing the enclosed block (or a no-op)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs or None)

    def add_complete(self, name: str, t0_seconds: float, dur_seconds: float, **attrs) -> None:
        """Record an already-measured ``perf_counter`` interval.

        ``time.perf_counter()`` and ``time.perf_counter_ns()`` share one
        clock, so float-second starts convert directly into the same
        timeline the context-manager spans live on.
        """
        if not self.enabled:
            return
        self.events.append(
            SpanEvent(
                name,
                int(t0_seconds * 1e9),
                max(0, int(dur_seconds * 1e9)),
                attrs or None,
            )
        )

    def clear(self) -> None:
        self.events.clear()
