"""Span tracing: flat completed-span events, nested at export time.

Two recording styles, one event shape:

* ``with tracer.span("factorize", tier=l):`` -- the context-manager form
  for code whose control flow tolerates a ``with`` block.
* ``tracer.add_complete("cvn", t0, dt, tier=l)`` -- the flat form for
  hot solver loops that already keep ``perf_counter`` phase timing;
  they report the (start, duration) pair they measured anyway, with no
  indentation changes to the numeric code.

Both append a :class:`SpanEvent` carrying absolute start, duration, and
the **recording thread's id**.  Within one thread all spans share one
monotonic clock, so temporal containment *is* the nesting relation and
the exporters recover each thread's span tree with a stack walk over
that thread's events sorted by start time (see
:mod:`repro.obs.export`).  Spans from different threads -- a service's
worker pool all reporting into one tracer -- land in separate lanes and
never corrupt each other's nesting walk.  Nothing in the hot path
maintains parent pointers.

The tracer is thread-safe: event recording, :meth:`Tracer.extend`, and
:meth:`Tracer.clear` serialize on one lock, so concurrent workers can
share a tracer (and a ``--profile`` session can absorb worker-thread
spans) without tearing the event list.  The *disabled* path takes no
lock: :meth:`Tracer.span` returns the shared :data:`NULL_SPAN`
singleton and :meth:`Tracer.add_complete` returns immediately -- no
per-event allocation when nobody is watching.  Engines additionally
hoist ``tr = obs.tracer()`` and guard bulk instrumentation with
``if tr.enabled:`` so the disabled cost is one attribute read.
"""

from __future__ import annotations

import threading
import time


class SpanEvent:
    """One completed span: name, absolute start (ns), duration (ns),
    and the OS thread id it was recorded on (0 = unknown/legacy)."""

    __slots__ = ("name", "t0_ns", "dur_ns", "attrs", "tid")

    def __init__(
        self,
        name: str,
        t0_ns: int,
        dur_ns: int,
        attrs: dict | None,
        tid: int = 0,
    ):
        self.name = name
        self.t0_ns = t0_ns
        self.dur_ns = dur_ns
        self.attrs = attrs
        self.tid = tid

    @property
    def end_ns(self) -> int:
        return self.t0_ns + self.dur_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, t0={self.t0_ns}, dur={self.dur_ns})"


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """Live context-manager span; records its event on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict | None):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        self._t0_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter_ns()
        self._tracer._emit(
            SpanEvent(
                self._name,
                self._t0_ns,
                t1 - self._t0_ns,
                self._attrs,
                threading.get_ident(),
            )
        )
        return False


class Tracer:
    """Collects :class:`SpanEvent` records when enabled.

    ``thread_names`` maps every thread id seen so far to the thread's
    name at recording time, so exporters can label lanes
    ("repro-serve-worker_0") instead of printing raw ids.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: list[SpanEvent] = []
        self.thread_names: dict[int, str] = {}
        self._lock = threading.Lock()

    def _emit(self, event: SpanEvent) -> None:
        with self._lock:
            self.events.append(event)
            if event.tid not in self.thread_names:
                self.thread_names[event.tid] = threading.current_thread().name

    def span(self, name: str, **attrs):
        """Context manager timing the enclosed block (or a no-op)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs or None)

    def add_complete(self, name: str, t0_seconds: float, dur_seconds: float, **attrs) -> None:
        """Record an already-measured ``perf_counter`` interval.

        ``time.perf_counter()`` and ``time.perf_counter_ns()`` share one
        clock, so float-second starts convert directly into the same
        timeline the context-manager spans live on.
        """
        if not self.enabled:
            return
        self._emit(
            SpanEvent(
                name,
                int(t0_seconds * 1e9),
                max(0, int(dur_seconds * 1e9)),
                attrs or None,
                threading.get_ident(),
            )
        )

    def extend(self, events: list[SpanEvent], thread_names: dict[int, str] | None = None) -> None:
        """Absorb already-recorded events (a finished job session's
        spans forwarded into a service-lifetime profile trace)."""
        with self._lock:
            self.events.extend(events)
            if thread_names:
                for tid, name in thread_names.items():
                    self.thread_names.setdefault(tid, name)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
            self.thread_names.clear()
