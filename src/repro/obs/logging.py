"""Structured JSON logging: one event per line, correlation id on each.

The service writes two log streams through one :class:`JsonLogger`:

* **access** events -- one per HTTP request (method, path, status,
  duration);
* **job** events -- one per lifecycle transition (submitted, started,
  done, failed, cancelled, expired) with the job's latency phases.

Every line is a self-contained JSON object with ``event``, ``ts``
(epoch seconds), and -- whenever the event concerns a job -- ``cid``,
the correlation id minted at submission.  Grepping a cid therefore
yields the job's complete story across both streams, which is the
debugging workflow the correlation id exists for
(docs/observability.md).

Stdlib-only by design: ``logging`` handlers, formatters and
propagation add configuration surface the service does not need; a
locked ``write`` + ``flush`` on a text stream is the whole feature.
A ``JsonLogger(stream=None)`` swallows events at the cost of one
``if`` -- callers never guard.
"""

from __future__ import annotations

import json
import threading
import time


class JsonLogger:
    """Line-oriented JSON event writer (thread-safe, optionally off)."""

    def __init__(self, stream=None, *, clock=time.time):
        self.stream = stream
        self._clock = clock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.stream is not None

    def log(self, event: str, cid: str | None = None, **fields) -> None:
        """Emit one event line.  ``cid`` is the correlation id; pass it
        for every job-related event so lines join up across streams."""
        if self.stream is None:
            return
        record: dict = {"ts": round(self._clock(), 6), "event": event}
        if cid is not None:
            record["cid"] = cid
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            self.stream.write(line + "\n")
            try:
                self.stream.flush()
            except (ValueError, OSError):  # closed stream at shutdown
                pass

    def access(self, method: str, path: str, status: int, dur_seconds: float,
               cid: str | None = None, **fields) -> None:
        self.log(
            "http.access",
            cid=cid,
            method=method,
            path=path,
            status=status,
            dur_ms=round(dur_seconds * 1e3, 3),
            **fields,
        )

    def job(self, transition: str, cid: str, job_id: str, **fields) -> None:
        self.log(f"job.{transition}", cid=cid, job=job_id, **fields)


#: Shared do-nothing logger for call sites without a configured stream.
NULL_LOGGER = JsonLogger(stream=None)
