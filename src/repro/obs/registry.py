"""Metrics registry: named counters, gauges, histograms, and series.

The quantities every engine in the tree keeps ad-hoc today --
factorization counts, cache hit/miss tallies, multi-RHS columns solved,
outer-iteration totals, bytes of factor storage -- become named
instruments in one :class:`MetricsRegistry`, so a profiling session (or
the bench harness) can snapshot the whole run in one call.

On top of the scalar instruments the registry carries the two shapes a
scrapeable service needs (see :mod:`repro.obs.promexport`):

* **labeled families** (:class:`LabeledCounter`, :class:`LabeledGauge`)
  -- one name, many children keyed by a tuple of label values, e.g.
  ``serve.jobs_total{state="done"}``;
* **fixed-bucket histograms** (:class:`BucketHistogram`) -- cumulative
  latency distributions over a fixed upper-bound ladder, the shape
  Prometheus histograms and latency SLO math expect, optionally
  labeled.

Design constraints, in order:

* **Zero dependencies.**  Pure Python; importable from anywhere in the
  tree (``linalg`` included) without cycles.
* **Cheap when nobody is watching.**  Counter/gauge/histogram updates
  are scalar attribute writes -- no per-event object allocation -- so the
  engines report unconditionally.  Only :class:`Series` (per-iteration
  convergence traces) grows with the workload, which is why the session
  layer gates series recording behind an explicit flag.  Bucket
  histograms are fixed-size arrays -- memory is bounded by the bucket
  ladder, not the observation count.
* **Countable.**  ``ops`` tallies every update the registry absorbed;
  the disabled-overhead benchmark multiplies it by the measured per-op
  cost to bound instrumentation overhead deterministically instead of
  diffing two noisy wall-clock runs.
* **Thread-safe where it must be.**  The one-call update entry points
  (:meth:`MetricsRegistry.add` and friends) and :meth:`snapshot` take a
  lock: engines running on a service's worker pool all report into the
  shared default registry, and an unlocked ``value += n`` is a
  read-modify-write that loses updates under preemption.  Direct
  instrument handles (``Counter.add`` on a locally owned counter)
  remain lock-free -- owners serialize access themselves.
* **Forwardable.**  A registry can mirror its one-call updates into a
  parent (``forward_to``): the service runs each job inside its own
  registry for per-job attribution while the process-wide registry --
  what ``/metrics`` scrapes -- still sees every update.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left

#: Default latency ladder (seconds) for bucket histograms: sub-ms HTTP
#: plumbing up through minute-long Monte Carlo jobs.  Matches the table
#: in docs/observability.md.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """Monotonic integer count (``add``), e.g. LU factorizations."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written scalar (``set``), e.g. bytes of factor storage."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming scalar distribution: count/total/min/max (``observe``).

    Deliberately bucket-free -- the summaries the profile table needs
    (count, mean, extremes) come from four scalars, and per-observation
    cost stays allocation-free.  For scrapeable latency distributions
    use :class:`BucketHistogram`.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class BucketHistogram:
    """Fixed-bucket distribution in the Prometheus shape.

    ``buckets`` is a sorted ladder of inclusive upper bounds; one extra
    implicit ``+Inf`` bucket catches the overflow.  Counts are stored
    per-bucket (non-cumulative) and accumulated at export time, so an
    observation is one bisect plus one integer add -- allocation-free
    and bounded memory regardless of observation volume.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: tuple = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"buckets must be a sorted non-empty ladder, got {buckets!r}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts (``le`` semantics), ending with
        the ``+Inf`` bucket, which equals ``count``."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "counts": list(self.counts),
        }


def _label_key(labelnames: tuple, labels: dict) -> tuple:
    try:
        return tuple(str(labels[name]) for name in labelnames)
    except KeyError as exc:
        raise ValueError(
            f"missing label {exc.args[0]!r}; expected {labelnames}"
        ) from None


class _LabeledFamily:
    """One metric name, many children keyed by label-value tuples."""

    __slots__ = ("name", "labelnames", "children")

    child_factory = None  # set by subclasses

    def __init__(self, name: str, labelnames: tuple):
        self.name = name
        self.labelnames = tuple(str(n) for n in labelnames)
        self.children: dict[tuple, object] = {}

    def _child(self, key: tuple):
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = self._make_child()
        return child

    def labels(self, **labels):
        """Child instrument for one label-value combination."""
        return self._child(_label_key(self.labelnames, labels))


class LabeledCounter(_LabeledFamily):
    __slots__ = ()

    def _make_child(self) -> Counter:
        return Counter(self.name)


class LabeledGauge(_LabeledFamily):
    __slots__ = ()

    def _make_child(self) -> Gauge:
        return Gauge(self.name)


class LabeledBucketHistogram(_LabeledFamily):
    __slots__ = ("buckets",)

    def __init__(self, name: str, labelnames: tuple, buckets: tuple = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, labelnames)
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self) -> BucketHistogram:
        return BucketHistogram(self.name, self.buckets)


def _series_key(key: tuple) -> str:
    """JSON-stable snapshot key for one label-value tuple (decode with
    ``json.loads``)."""
    return json.dumps(list(key))


class Series:
    """Ordered (step, value) trace, e.g. a residual per outer iteration.

    The only instrument whose memory grows with the workload; the
    session layer records into it only when series capture is enabled.
    """

    __slots__ = ("name", "steps", "values")

    def __init__(self, name: str):
        self.name = name
        self.steps: list[float] = []
        self.values: list[float] = []

    def append(self, step: float, value: float) -> None:
        self.steps.append(float(step))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.steps, self.values))


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create accessors."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.bucket_histograms: dict[str, LabeledBucketHistogram] = {}
        self.labeled_counters: dict[str, LabeledCounter] = {}
        self.labeled_gauges: dict[str, LabeledGauge] = {}
        self.series_store: dict[str, Series] = {}
        #: Updates absorbed (any instrument) -- the unit the disabled-mode
        #: overhead bound is expressed in.
        self.ops = 0
        #: Optional parent registry mirroring every one-call update (the
        #: service's per-job registries forward into the process one).
        self.forward_to: MetricsRegistry | None = None
        # Serializes the one-call update paths and snapshot: the shared
        # default registry absorbs reports from every worker thread of a
        # running service, where unlocked += loses counts.
        self._lock = threading.Lock()

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def bucket_histogram(
        self,
        name: str,
        labelnames: tuple = (),
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
    ) -> LabeledBucketHistogram:
        instrument = self.bucket_histograms.get(name)
        if instrument is None:
            instrument = self.bucket_histograms[name] = LabeledBucketHistogram(
                name, tuple(labelnames), buckets
            )
        return instrument

    def labeled_counter(self, name: str, labelnames: tuple) -> LabeledCounter:
        instrument = self.labeled_counters.get(name)
        if instrument is None:
            instrument = self.labeled_counters[name] = LabeledCounter(
                name, tuple(labelnames)
            )
        return instrument

    def labeled_gauge(self, name: str, labelnames: tuple) -> LabeledGauge:
        instrument = self.labeled_gauges.get(name)
        if instrument is None:
            instrument = self.labeled_gauges[name] = LabeledGauge(
                name, tuple(labelnames)
            )
        return instrument

    def series(self, name: str) -> Series:
        instrument = self.series_store.get(name)
        if instrument is None:
            instrument = self.series_store[name] = Series(name)
        return instrument

    # -- one-call updates (what the engines use) -------------------------
    def add(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.ops += 1
            self.counter(name).add(n)
        if self.forward_to is not None:
            self.forward_to.add(name, n)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.ops += 1
            self.gauge(name).set(value)
        if self.forward_to is not None:
            self.forward_to.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.ops += 1
            self.histogram(name).observe(value)
        if self.forward_to is not None:
            self.forward_to.observe(name, value)

    def add_labeled(self, name: str, labels: dict, n: int = 1) -> None:
        with self._lock:
            self.ops += 1
            self.labeled_counter(name, tuple(labels)).labels(**labels).add(n)
        if self.forward_to is not None:
            self.forward_to.add_labeled(name, labels, n)

    def set_gauge_labeled(self, name: str, labels: dict, value: float) -> None:
        with self._lock:
            self.ops += 1
            self.labeled_gauge(name, tuple(labels)).labels(**labels).set(value)
        if self.forward_to is not None:
            self.forward_to.set_gauge_labeled(name, labels, value)

    def observe_bucket(
        self,
        name: str,
        value: float,
        labels: dict | None = None,
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        labels = labels or {}
        with self._lock:
            self.ops += 1
            family = self.bucket_histogram(name, tuple(labels), buckets)
            family.labels(**labels).observe(value)
        if self.forward_to is not None:
            self.forward_to.observe_bucket(name, value, labels, buckets)

    def record(self, name: str, step: float, value: float) -> None:
        with self._lock:
            self.ops += 1
            self.series(name).append(step, value)
        if self.forward_to is not None:
            self.forward_to.record(name, step, value)

    # -- snapshots -------------------------------------------------------
    def snapshot(self, *, include_series: bool = False) -> dict:
        """Plain-dict view of every instrument (JSON-ready).  Taken
        under the update lock, so concurrent reporters cannot tear it.

        Labeled-family series keys are JSON-encoded label-value lists
        (decode with ``json.loads``); ``labels`` carries the names.
        """
        with self._lock:
            snap: dict = {
                "counters": {k: c.value for k, c in self.counters.items()},
                "gauges": {k: g.value for k, g in self.gauges.items()},
                "histograms": {
                    k: h.summary() for k, h in self.histograms.items()
                },
            }
            if self.labeled_counters:
                snap["labeled_counters"] = {
                    k: {
                        "labels": list(f.labelnames),
                        "series": {
                            _series_key(key): child.value
                            for key, child in f.children.items()
                        },
                    }
                    for k, f in self.labeled_counters.items()
                }
            if self.labeled_gauges:
                snap["labeled_gauges"] = {
                    k: {
                        "labels": list(f.labelnames),
                        "series": {
                            _series_key(key): child.value
                            for key, child in f.children.items()
                        },
                    }
                    for k, f in self.labeled_gauges.items()
                }
            if self.bucket_histograms:
                snap["bucket_histograms"] = {
                    k: {
                        "labels": list(f.labelnames),
                        "buckets": list(f.buckets),
                        "series": {
                            _series_key(key): child.summary()
                            for key, child in f.children.items()
                        },
                    }
                    for k, f in self.bucket_histograms.items()
                }
            if include_series:
                snap["series"] = {
                    k: {"steps": list(s.steps), "values": list(s.values)}
                    for k, s in self.series_store.items()
                }
            return snap


def _delta_bucket_series(after: dict, before: dict) -> dict:
    count = after["count"] - before.get("count", 0)
    total = after["sum"] - before.get("sum", 0.0)
    prior_counts = before.get("counts") or [0] * len(after["counts"])
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "min": after["min"],
        "max": after["max"],
        "counts": [a - b for a, b in zip(after["counts"], prior_counts)],
    }


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histogram count/total are differenced; gauges and
    histogram extremes take their final value.  Labeled counters and
    bucket histograms are differenced per label series.  This is what
    the bench harness embeds per test: the test's own metric activity,
    not the process-lifetime accumulation.
    """
    counters = {
        name: value - before.get("counters", {}).get(name, 0)
        for name, value in after.get("counters", {}).items()
    }
    histograms = {}
    for name, summary in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(
            name, {"count": 0, "total": 0.0}
        )
        count = summary["count"] - prior["count"]
        total = summary["total"] - prior["total"]
        histograms[name] = {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": summary["min"],
            "max": summary["max"],
        }
    delta = {
        "counters": {k: v for k, v in counters.items() if v},
        "gauges": dict(after.get("gauges", {})),
        "histograms": {k: v for k, v in histograms.items() if v["count"]},
    }

    labeled = {}
    for name, family in after.get("labeled_counters", {}).items():
        prior = before.get("labeled_counters", {}).get(name, {}).get("series", {})
        series = {
            key: value - prior.get(key, 0)
            for key, value in family["series"].items()
        }
        series = {k: v for k, v in series.items() if v}
        if series:
            labeled[name] = {"labels": family["labels"], "series": series}
    if labeled:
        delta["labeled_counters"] = labeled

    buckets = {}
    for name, family in after.get("bucket_histograms", {}).items():
        prior = before.get("bucket_histograms", {}).get(name, {}).get("series", {})
        series = {
            key: _delta_bucket_series(summary, prior.get(key, {}))
            for key, summary in family["series"].items()
        }
        series = {k: v for k, v in series.items() if v["count"]}
        if series:
            buckets[name] = {
                "labels": family["labels"],
                "buckets": family["buckets"],
                "series": series,
            }
    if buckets:
        delta["bucket_histograms"] = buckets
    return delta
