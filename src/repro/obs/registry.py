"""Metrics registry: named counters, gauges, histograms, and series.

The quantities every engine in the tree keeps ad-hoc today --
factorization counts, cache hit/miss tallies, multi-RHS columns solved,
outer-iteration totals, bytes of factor storage -- become named
instruments in one :class:`MetricsRegistry`, so a profiling session (or
the bench harness) can snapshot the whole run in one call.

Design constraints, in order:

* **Zero dependencies.**  Pure Python; importable from anywhere in the
  tree (``linalg`` included) without cycles.
* **Cheap when nobody is watching.**  Counter/gauge/histogram updates
  are scalar attribute writes -- no per-event object allocation -- so the
  engines report unconditionally.  Only :class:`Series` (per-iteration
  convergence traces) grows with the workload, which is why the session
  layer gates series recording behind an explicit flag.
* **Countable.**  ``ops`` tallies every update the registry absorbed;
  the disabled-overhead benchmark multiplies it by the measured per-op
  cost to bound instrumentation overhead deterministically instead of
  diffing two noisy wall-clock runs.
* **Thread-safe where it must be.**  The one-call update entry points
  (:meth:`MetricsRegistry.add` and friends) and :meth:`snapshot` take a
  lock: engines running on a service's worker pool all report into the
  shared default registry, and an unlocked ``value += n`` is a
  read-modify-write that loses updates under preemption.  Direct
  instrument handles (``Counter.add`` on a locally owned counter)
  remain lock-free -- owners serialize access themselves.
"""

from __future__ import annotations

import math
import threading


class Counter:
    """Monotonic integer count (``add``), e.g. LU factorizations."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written scalar (``set``), e.g. bytes of factor storage."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming scalar distribution: count/total/min/max (``observe``).

    Deliberately bucket-free -- the summaries the profile table needs
    (count, mean, extremes) come from four scalars, and per-observation
    cost stays allocation-free.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Series:
    """Ordered (step, value) trace, e.g. a residual per outer iteration.

    The only instrument whose memory grows with the workload; the
    session layer records into it only when series capture is enabled.
    """

    __slots__ = ("name", "steps", "values")

    def __init__(self, name: str):
        self.name = name
        self.steps: list[float] = []
        self.values: list[float] = []

    def append(self, step: float, value: float) -> None:
        self.steps.append(float(step))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.steps, self.values))


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create accessors."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series_store: dict[str, Series] = {}
        #: Updates absorbed (any instrument) -- the unit the disabled-mode
        #: overhead bound is expressed in.
        self.ops = 0
        # Serializes the one-call update paths and snapshot: the shared
        # default registry absorbs reports from every worker thread of a
        # running service, where unlocked += loses counts.
        self._lock = threading.Lock()

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def series(self, name: str) -> Series:
        instrument = self.series_store.get(name)
        if instrument is None:
            instrument = self.series_store[name] = Series(name)
        return instrument

    # -- one-call updates (what the engines use) -------------------------
    def add(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.ops += 1
            self.counter(name).add(n)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.ops += 1
            self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.ops += 1
            self.histogram(name).observe(value)

    def record(self, name: str, step: float, value: float) -> None:
        with self._lock:
            self.ops += 1
            self.series(name).append(step, value)

    # -- snapshots -------------------------------------------------------
    def snapshot(self, *, include_series: bool = False) -> dict:
        """Plain-dict view of every instrument (JSON-ready).  Taken
        under the update lock, so concurrent reporters cannot tear it."""
        with self._lock:
            snap: dict = {
                "counters": {k: c.value for k, c in self.counters.items()},
                "gauges": {k: g.value for k, g in self.gauges.items()},
                "histograms": {
                    k: h.summary() for k, h in self.histograms.items()
                },
            }
            if include_series:
                snap["series"] = {
                    k: {"steps": list(s.steps), "values": list(s.values)}
                    for k, s in self.series_store.items()
                }
            return snap


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histogram count/total are differenced; gauges and
    histogram extremes take their final value.  This is what the bench
    harness embeds per test: the test's own metric activity, not the
    process-lifetime accumulation.
    """
    counters = {
        name: value - before.get("counters", {}).get(name, 0)
        for name, value in after.get("counters", {}).items()
    }
    histograms = {}
    for name, summary in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(
            name, {"count": 0, "total": 0.0}
        )
        count = summary["count"] - prior["count"]
        total = summary["total"] - prior["total"]
        histograms[name] = {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": summary["min"],
            "max": summary["max"],
        }
    return {
        "counters": {k: v for k, v in counters.items() if v},
        "gauges": dict(after.get("gauges", {})),
        "histograms": {k: v for k, v in histograms.items() if v["count"]},
    }
