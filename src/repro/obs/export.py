"""Trace exporters: Chrome trace-event JSON (Perfetto) and flat CSV.

The tracer records *flat* completed spans (absolute start, duration,
recording thread id).  Within one thread all spans share one monotonic
clock, so temporal containment is the nesting relation;
:func:`walk_events` recovers each thread's span tree with a stack walk
over that thread's events sorted by start time (ties broken
longest-first so an enclosing span opens before the span it contains).
Events from different threads walk in separate lanes -- a service worker
pool reporting into one tracer cannot corrupt another worker's nesting.
That one walk feeds both exporters and the summary aggregation,
guaranteeing the B/E stream Perfetto loads and the self-time
attribution in ``repro profile`` agree by construction.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, Iterator

from repro.obs.trace import SpanEvent


def _lanes(events: Iterable[SpanEvent]) -> list[list[SpanEvent]]:
    """Events grouped by recording thread, each lane sorted by start
    (longest-first on ties), lanes ordered by earliest event."""
    by_tid: dict[int, list[SpanEvent]] = {}
    for event in events:
        by_tid.setdefault(event.tid, []).append(event)
    lanes = [
        sorted(group, key=lambda e: (e.t0_ns, -e.dur_ns))
        for group in by_tid.values()
    ]
    lanes.sort(key=lambda lane: lane[0].t0_ns)
    return lanes


def walk_events(events: Iterable[SpanEvent]) -> Iterator[tuple[str, SpanEvent, int]]:
    """Yield ("B"|"E", event, depth) in begin/end order, lane by lane.

    Within each thread's lane: opens spans in start order; before
    opening one, closes every open span that ended at or before its
    start.  Depth is the nesting level at the moment the phase applies
    (0 = top level).  The walk finishes one thread's events before
    starting the next, so cross-thread overlap never distorts depths.
    """
    for lane in _lanes(events):
        stack: list[SpanEvent] = []
        for event in lane:
            while stack and stack[-1].end_ns <= event.t0_ns:
                closed = stack.pop()
                yield "E", closed, len(stack)
            yield "B", event, len(stack)
            stack.append(event)
        while stack:
            closed = stack.pop()
            yield "E", closed, len(stack)


def chrome_trace(
    events: Iterable[SpanEvent],
    metrics: dict | None = None,
    thread_names: dict[int, str] | None = None,
) -> dict:
    """Trace-event JSON object (Perfetto/chrome://tracing loadable).

    Timestamps are microseconds relative to the earliest span, emitted
    as duration-begin/end ("B"/"E") pairs sorted by timestamp.  Each
    recording thread gets its own ``tid`` lane (small indices in order
    of first activity, not raw OS ids); when ``thread_names`` is given,
    ``thread_name`` metadata events label the lanes.  The metrics
    snapshot, when given, rides along as a top-level key -- viewers
    ignore unknown keys, tooling gets counters for free.
    """
    events = list(events)
    origin_ns = min((e.t0_ns for e in events), default=0)
    lane_index: dict[int, int] = {}
    trace_events = []
    for phase, event, _depth in walk_events(events):
        lane = lane_index.setdefault(event.tid, len(lane_index) + 1)
        ts_ns = event.t0_ns if phase == "B" else event.end_ns
        record = {
            "name": event.name,
            "ph": phase,
            "ts": (ts_ns - origin_ns) / 1e3,
            "pid": 1,
            "tid": lane,
        }
        if phase == "B" and event.attrs:
            record["args"] = dict(event.attrs)
        trace_events.append(record)
    trace_events.sort(key=lambda r: r["ts"])
    if thread_names:
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": lane,
                "args": {"name": thread_names.get(tid, f"thread-{tid}")},
            }
            for tid, lane in sorted(lane_index.items(), key=lambda kv: kv[1])
        ]
        trace_events = meta + trace_events
    out = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if metrics is not None:
        out["metrics"] = metrics
    return out


def write_chrome_trace(
    path,
    events: Iterable[SpanEvent],
    metrics: dict | None = None,
    thread_names: dict[int, str] | None = None,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events, metrics, thread_names), fh, indent=1)
        fh.write("\n")


_CSV_FIELDS = ("name", "t0_ns", "dur_ns", "attrs", "tid")


def write_csv_trace(path, events: Iterable[SpanEvent]) -> None:
    """Flat span CSV: one row per completed span, attrs as JSON."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_FIELDS)
        for e in sorted(events, key=lambda e: (e.t0_ns, -e.dur_ns)):
            writer.writerow(
                [e.name, e.t0_ns, e.dur_ns, json.dumps(e.attrs) if e.attrs else "", e.tid]
            )


def read_csv_trace(path) -> list[SpanEvent]:
    with open(path, encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if tuple(header) != _CSV_FIELDS:
            raise ValueError(f"not a repro trace CSV: header {header!r}")
        return [
            SpanEvent(name, int(t0), int(dur), json.loads(attrs) if attrs else None, int(tid))
            for name, t0, dur, attrs, tid in reader
        ]


def span_summary(events: Iterable[SpanEvent]) -> dict[str, dict]:
    """Per-name aggregation: count, total and self wall time, extremes.

    Self time subtracts each span's direct children (found by the same
    per-lane stack walk the exporters use), so a phase table sums to
    wall clock without double-counting nested spans -- even when the
    spans came from several worker threads.
    """
    events = list(events)
    child_ns: dict[int, int] = {}
    stack: list[SpanEvent] = []
    for phase, event, _depth in walk_events(events):
        if phase != "B":
            stack.pop()
            continue
        if stack:
            parent = stack[-1]
            child_ns[id(parent)] = child_ns.get(id(parent), 0) + event.dur_ns
        stack.append(event)

    summary: dict[str, dict] = {}
    for e in events:
        row = summary.setdefault(
            e.name,
            {"count": 0, "total_s": 0.0, "self_s": 0.0, "min_s": None, "max_s": None},
        )
        dur_s = e.dur_ns / 1e9
        row["count"] += 1
        row["total_s"] += dur_s
        row["self_s"] += (e.dur_ns - child_ns.get(id(e), 0)) / 1e9
        row["min_s"] = dur_s if row["min_s"] is None else min(row["min_s"], dur_s)
        row["max_s"] = dur_s if row["max_s"] is None else max(row["max_s"], dur_s)
    return summary
