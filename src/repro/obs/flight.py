"""Flight recorder: an always-on bounded ring of recent spans.

Tracing proper is opt-in (``--profile``) because an unbounded event
list cannot run forever.  The flight recorder closes the gap for the
service: it keeps the **last N spans** in a ``deque(maxlen=...)`` ring,
so memory is bounded by capacity, not uptime, and recording stays an
O(1) locked append.  When a job fails or times out -- precisely when
nobody thought to profile in advance -- the service dumps the ring (or
the job's own attached spans) as a Chrome trace that Perfetto loads
directly, answering "what was the process doing just before this
broke?" from artifacts alone.

Capacity sizing: a coalesced sweep batch records a handful of spans per
job plus a few hundred solver phases; the default 4096 holds several
seconds of busy-service history at <1 MB (SpanEvents are slotted,
attrs usually None).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.trace import SpanEvent

DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Bounded ring of recent :class:`SpanEvent` records.

    Thread-safe: the service's workers all append into one recorder.
    ``record``/``extend`` never grow memory past ``capacity`` -- the
    deque drops the oldest span on overflow (counted in ``dropped``).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[SpanEvent] = deque(maxlen=capacity)
        self.thread_names: dict[int, str] = {}
        self.recorded = 0
        self._lock = threading.Lock()

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound so far."""
        with self._lock:
            return max(0, self.recorded - len(self._ring))

    def record(self, event: SpanEvent) -> None:
        with self._lock:
            self._ring.append(event)
            self.recorded += 1
            if event.tid not in self.thread_names:
                self.thread_names[event.tid] = f"thread-{event.tid}"

    def extend(self, events: Iterable[SpanEvent], thread_names: dict[int, str] | None = None) -> None:
        """Absorb a batch of finished spans (one locked pass)."""
        with self._lock:
            for event in events:
                self._ring.append(event)
                self.recorded += 1
            if thread_names:
                for tid, name in thread_names.items():
                    self.thread_names.setdefault(tid, name)

    def snapshot(self) -> list[SpanEvent]:
        """Copy of the current ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def snapshot_names(self) -> dict[int, str]:
        with self._lock:
            return dict(self.thread_names)

    def chrome_trace(self, metrics: dict | None = None) -> dict:
        """Perfetto-loadable trace of the current ring."""
        with self._lock:
            events = list(self._ring)
            names = dict(self.thread_names)
        return chrome_trace(events, metrics, thread_names=names)

    def dump(self, path, metrics: dict | None = None) -> None:
        """Write the current ring as a Chrome trace JSON file."""
        with self._lock:
            events = list(self._ring)
            names = dict(self.thread_names)
        write_chrome_trace(path, events, metrics, thread_names=names)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.thread_names.clear()
            self.recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
