"""Telemetry sessions: the registry/tracer pair the engines report to.

A :class:`Telemetry` object bundles one :class:`~repro.obs.registry.MetricsRegistry`
with one :class:`~repro.obs.trace.Tracer` and a flag for convergence-series
capture.  A module-level stack holds the active session; the bottom entry
always exists (counters on, tracing and series off), so engine code calls
:func:`metrics` / :func:`tracer` unconditionally -- there is no None case.

``with obs.session(trace=True) as tel:`` pushes a fresh session for the
duration of a profiled run (the ``--profile`` flag and ``repro profile``
subcommand do exactly this), isolating its counters and spans from
whatever accumulated before.

Two stacks, two scopes:

* the **process stack** (``session()``) is what single-threaded CLI runs
  use -- one session active for everyone;
* a **thread-local overlay** (``scoped(tel)``) lets a service worker run
  one job inside its own session without disturbing the sessions other
  worker threads (or the main thread) see.  :func:`active` consults the
  overlay first, so engine code is oblivious; :func:`current_global`
  skips the overlay for code that must reach the process-wide session
  (e.g. forwarding a finished job's spans into a ``--profile`` trace).

Engines follow one idiom::

    tr = obs.tracer()          # hoisted once per solve, not per step
    reg = obs.metrics()
    ...
    reg.add("batch.column_solves", idx.size)      # always-on scalar
    if tr.enabled:                                 # bulk span recording
        tr.add_complete("cvn", t0, dt, tier=l)

Series capture is the exception: it allocates per iteration, so inner
solvers hoist ``series = obs.active_series("cg.residual")`` and append
only when it is not None.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.registry import MetricsRegistry, Series
from repro.obs.trace import Tracer


class Telemetry:
    """One registry + tracer + series flag; what a session activates."""

    def __init__(self, *, trace: bool = False, series: bool = False):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(enabled=trace)
        self.series_enabled = series


# Bottom of the stack is the always-present default session: counters
# accumulate process-wide, tracing and series capture stay off.
_active: list[Telemetry] = [Telemetry()]

# Per-thread overlay for service workers running scoped job sessions.
_tls = threading.local()


def _overlay() -> list[Telemetry]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def active() -> Telemetry:
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return _active[-1]


def current_global() -> Telemetry:
    """The process-wide session, ignoring any thread-local overlay."""
    return _active[-1]


def metrics() -> MetricsRegistry:
    return active().registry


def tracer() -> Tracer:
    return active().tracer


@contextmanager
def session(*, trace: bool = True, series: bool = True):
    """Push a fresh telemetry session; pop it on exit.

    The session object stays readable after the block closes, so callers
    export its trace/metrics once the workload finishes.
    """
    tel = Telemetry(trace=trace, series=series)
    _active.append(tel)
    try:
        yield tel
    finally:
        _active.pop()


@contextmanager
def scoped(tel: Telemetry):
    """Make ``tel`` the active session *for the current thread only*.

    This is how the service attributes work to jobs: each worker wraps a
    job's execution in ``scoped(job_tel)`` so every engine-level counter
    and span lands in the job's own registry/tracer, while other threads
    keep seeing the process session.  Typically ``tel.registry.forward_to``
    points at the process registry so service-wide totals stay monotonic.
    """
    stack = _overlay()
    stack.append(tel)
    try:
        yield tel
    finally:
        stack.pop()


# -- convenience wrappers over the active session ------------------------

def span(name: str, **attrs):
    return active().tracer.span(name, **attrs)


def add(name: str, n: int = 1) -> None:
    active().registry.add(name, n)


def set_gauge(name: str, value: float) -> None:
    active().registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    active().registry.observe(name, value)


def observe_bucket(name: str, value: float, labels: dict | None = None) -> None:
    active().registry.observe_bucket(name, value, labels)


def add_labeled(name: str, labels: dict, n: int = 1) -> None:
    active().registry.add_labeled(name, labels, n)


def record_series(name: str, step: float, value: float) -> None:
    tel = active()
    if tel.series_enabled:
        tel.registry.record(name, step, value)


def active_series(name: str) -> Series | None:
    """Series handle when capture is on, else None.

    Inner solvers hoist this once outside their iteration loop; the
    per-iteration cost when capture is off is a None check.
    """
    tel = active()
    if not tel.series_enabled:
        return None
    return tel.registry.series(name)


class Stopwatch:
    """Context manager timing a block into ``.seconds``.

    Always measures (callers read ``.seconds`` afterwards, like the old
    ``analysis.runtime.Timer``); additionally records a span when the
    active tracer is enabled, so bench phases show up in profiles.
    """

    __slots__ = ("name", "attrs", "seconds", "_t0")

    def __init__(self, name: str = "timed", **attrs):
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._t0
        tr = active().tracer
        if tr.enabled:
            tr.add_complete(self.name, self._t0, self.seconds, **self.attrs)
        return False
