"""Prometheus text exposition (format version 0.0.4) for the registry.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot` dict
into the plain-text format every Prometheus-compatible scraper ingests:

* counters  -> ``repro_<name>_total``          (TYPE counter)
* gauges    -> ``repro_<name>``                (TYPE gauge)
* scalar histograms -> ``_count``/``_sum``     (TYPE summary; the
  bucket-free :class:`~repro.obs.registry.Histogram` carries no
  distribution, only the running count/total)
* labeled counters/gauges -> one sample per label combination
* bucket histograms -> the full ``_bucket{le=...}`` ladder with the
  ``+Inf`` bucket, ``_sum`` and ``_count``    (TYPE histogram)

Dotted internal names map to underscore names under one ``repro_``
namespace (``serve.jobs_done`` -> ``repro_serve_jobs_done_total``), so
dashboards address the whole tree with one prefix.

:func:`validate_prometheus_text` is a promtool-style line validator
(pure stdlib) used by the tests and the service smoke check: it
enforces the line grammar, TYPE-before-sample ordering, histogram
bucket cumulativity, and the ``+Inf``/``_count`` agreement -- the
properties a real scraper would reject a payload over.
"""

from __future__ import annotations

import json
import math
import re

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _metric_name(name: str, suffix: str = "") -> str:
    base = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    out = f"repro_{base}{suffix}"
    if not _NAME_OK.match(out):  # pragma: no cover - prefix guarantees validity
        raise ValueError(f"cannot form a valid metric name from {name!r}")
    return out


def _label_name(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not _LABEL_OK.match(out):
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_block(names, values) -> str:
    if not names:
        return ""
    # Sorted by label name so the exposition is canonical regardless of
    # the order the first observation supplied its labels in.
    inner = ",".join(
        f'{_label_name(n)}="{_escape_label_value(str(v))}"'
        for n, v in sorted(zip(names, values), key=lambda pair: pair[0])
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict, extra_gauges: dict | None = None) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    ``extra_gauges`` lets callers append derived scalars (cache/queue
    stats, uptime) that live outside the registry; values must be
    numeric and names follow the same sanitization.
    """
    lines: list[str] = []

    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt_value(snapshot['counters'][name])}")

    for name, family in sorted(snapshot.get("labeled_counters", {}).items()):
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        for key, value in sorted(family["series"].items()):
            block = _labels_block(family["labels"], json.loads(key))
            lines.append(f"{metric}{block} {_fmt_value(value)}")

    gauges = dict(snapshot.get("gauges", {}))
    if extra_gauges:
        gauges.update(extra_gauges)
    for name in sorted(gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt_value(gauges[name])}")

    for name, family in sorted(snapshot.get("labeled_gauges", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for key, value in sorted(family["series"].items()):
            block = _labels_block(family["labels"], json.loads(key))
            lines.append(f"{metric}{block} {_fmt_value(value)}")

    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_fmt_value(summary['count'])}")
        lines.append(f"{metric}_sum {_fmt_value(summary['total'])}")

    for name, family in sorted(snapshot.get("bucket_histograms", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        bounds = family["buckets"]
        labelnames = family["labels"]
        for key, child in sorted(family["series"].items()):
            values = json.loads(key)
            cumulative = 0
            for bound, count in zip(bounds, child["counts"]):
                cumulative += count
                block = _labels_block(
                    list(labelnames) + ["le"], list(values) + [_fmt_value(bound)]
                )
                lines.append(f"{metric}_bucket{block} {cumulative}")
            cumulative += child["counts"][-1]
            block = _labels_block(list(labelnames) + ["le"], list(values) + ["+Inf"])
            lines.append(f"{metric}_bucket{block} {cumulative}")
            base = _labels_block(labelnames, values)
            lines.append(f"{metric}_sum{base} {_fmt_value(child['sum'])}")
            lines.append(f"{metric}_count{base} {cumulative}")

    return "\n".join(lines) + "\n"


# -- promtool-style validation (used by tests and the smoke check) -------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<ts>-?[0-9]+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)
_SUFFIXES = ("_bucket", "_sum", "_count", "_total")


def _family_of(name: str, declared: set[str]) -> str | None:
    if name in declared:
        return name
    for suffix in _SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)]
        if name.endswith(suffix) and name in declared:
            return name
    # counters are declared with their full _total name
    return name if name in declared else None


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def validate_prometheus_text(text: str) -> dict[str, float]:
    """Validate exposition text; return ``{sample_key: value}``.

    Checks (raising ``ValueError`` with the offending line):

    * every line is a comment, blank, or a well-formed sample;
    * label blocks parse as ``name="escaped value"`` pairs;
    * every sample belongs to a family declared by a preceding
      ``# TYPE`` line;
    * histogram ``_bucket`` series are cumulative in ``le`` order and
      end with a ``+Inf`` bucket equal to the family ``_count``.

    The returned mapping keys are ``name{labels}`` exactly as printed,
    which makes monotonicity assertions across scrapes one dict lookup.
    """
    declared: set[str] = set()
    samples: dict[str, float] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
                if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {lineno}: unknown TYPE {parts[3]!r}")
                declared.add(parts[2])
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = m.group("name")
        labels_text = m.group("labels")
        label_map: dict[str, str] = {}
        if labels_text:
            for pair in re.split(r",(?=[a-zA-Z_])", labels_text):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(f"line {lineno}: malformed label pair {pair!r}")
                key, _, raw = pair.partition("=")
                label_map[key] = raw[1:-1]
        try:
            value = _parse_value(m.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value {m.group('value')!r}"
            ) from None
        if _family_of(name, declared) is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE declaration")
        key = name + (("{" + labels_text + "}") if labels_text else "")
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value

        if name.endswith("_bucket") and "le" in label_map:
            series = name[: -len("_bucket")] + _labels_block(
                sorted(k for k in label_map if k != "le"),
                [label_map[k] for k in sorted(label_map) if k != "le"],
            )
            buckets.setdefault(series, []).append((_parse_value(label_map["le"]), value))
        elif name.endswith("_count"):
            series = name[: -len("_count")] + (
                ("{" + labels_text + "}") if labels_text else ""
            )
            counts[series] = value

    for series, ladder in buckets.items():
        last = -math.inf
        prev_count = -1.0
        for le, count in ladder:  # emitted in le order
            if le <= last:
                raise ValueError(f"{series}: bucket bounds not increasing at le={le}")
            if count < prev_count:
                raise ValueError(f"{series}: bucket counts not cumulative at le={le}")
            last, prev_count = le, count
        if not math.isinf(ladder[-1][0]):
            raise ValueError(f"{series}: histogram missing +Inf bucket")
        if series in counts and counts[series] != ladder[-1][1]:
            raise ValueError(
                f"{series}: _count {counts[series]} != +Inf bucket {ladder[-1][1]}"
            )
    return samples
