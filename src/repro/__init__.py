"""repro: Voltage Propagation method for 3-D power grid IR-drop analysis.

A from-scratch reproduction of C. Zhang, V. F. Pavlidis, G. De Micheli,
"Voltage Propagation Method for 3-D Power Grid Analysis" (DATE 2012):
the VP solver itself plus every substrate it needs -- grid/stack models,
an IBM-style netlist pipeline with an MNA SPICE engine, and a sparse
iterative-solver toolbox (row-based relaxation, PCG with a family of
preconditioners, multigrid, random walks).

Quick start::

    from repro import paper_stack, solve_vp

    stack = paper_stack(100)          # 3 tiers x 100 x 100 = 30 K nodes (C0)
    result = solve_vp(stack)          # voltage propagation
    print(result.worst_ir_drop())     # worst IR drop in volts
"""

from repro.grid import (
    Grid2D,
    PillarSet,
    PowerGridStack,
    paper_stack,
    synthesize_stack,
    stack_system,
    validate_stack,
)
from repro.core import (
    RowBasedSolver,
    RowBasedConfig,
    VPConfig,
    VPResult,
    VoltagePropagationSolver,
    solve_vp,
    TransientVPSolver,
    step_stimulus,
    pulse_train_stimulus,
    BatchedTransientSolver,
    solve_transient_batch,
)
from repro.linalg import cg, solve_direct
from repro.spice import dc_operating_point, solve_stack_spice
from repro.analysis import compare_voltages, ir_drop_report
from repro.stochastic import VariationSpec, run_monte_carlo
from repro.sensitivity import ParameterSpace, adjoint_gradient
from repro.optimize import allocate_wire_width, refine_pin_placement

try:  # single source of truth: the installed package metadata
    from importlib.metadata import PackageNotFoundError, version

    __version__ = version("repro-vp3d")
except PackageNotFoundError:  # running from a bare checkout (PYTHONPATH=src)
    __version__ = "0.0.0+uninstalled"

__all__ = [
    "Grid2D",
    "PillarSet",
    "PowerGridStack",
    "paper_stack",
    "synthesize_stack",
    "stack_system",
    "validate_stack",
    "RowBasedSolver",
    "RowBasedConfig",
    "VPConfig",
    "VPResult",
    "VoltagePropagationSolver",
    "solve_vp",
    "TransientVPSolver",
    "step_stimulus",
    "pulse_train_stimulus",
    "BatchedTransientSolver",
    "solve_transient_batch",
    "cg",
    "solve_direct",
    "dc_operating_point",
    "solve_stack_spice",
    "compare_voltages",
    "ir_drop_report",
    "VariationSpec",
    "run_monte_carlo",
    "ParameterSpace",
    "adjoint_gradient",
    "allocate_wire_width",
    "refine_pin_placement",
    "__version__",
]
