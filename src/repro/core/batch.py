"""Batched multi-scenario VP engine -- shared-factorization CVN.

Sweeping load corners, rail-current scalings, TSV design points, or
metal-width corners with the plain solver means one
:func:`repro.core.vp.solve_vp` call per scenario, each re-deriving the
same per-tier plane structure.  But none of those knobs require a new
factorization: loads and pad currents only move the right-hand sides,
TSV resistances (scalar knob or per-segment spread) act purely in the
propagation phase, and a metal-width scaling ``G -> alpha G`` solves
against the unscaled factors via the scaled-factor fast path.  So all
scenarios of a sweep share one set of plane factorizations, and the CVN
phase becomes a *multi-column* back-substitution:

* per tier, the reduced RHS is an ``(n_free, S)`` matrix -- one column
  per scenario -- solved against the cached LU factors in a single call;
* TSV current accumulation and voltage propagation run as
  ``(layers, tsvs, scenarios)`` array operations;
* the VDA update applies column-wise (every policy in
  :mod:`repro.core.vda` is batch-aware with per-scenario state);
* a per-scenario convergence mask retires finished scenarios early, so
  late outer iterations only back-substitute the stragglers' columns.

Column ``s`` of the batch follows exactly the iteration sequence a
standalone ``solve_vp(scenario.apply(stack), inner="direct")`` would
take -- the single-scenario path is the batch-size-1 special case of
this code (both drive :class:`repro.core.planes.ReducedPlaneSystem`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.planes import ReducedPlaneSystem
from repro.core.vda import VDAPolicy, make_vda_policy
from repro.core.vp import (
    AUTO_ANDERSON_WINDOW,
    AUTO_ETA_THRESHOLD,
    loadshare_v0,
    resolve_vda_policy,
)
from repro.errors import ConvergenceError, GridError, ReproError
from repro.grid.stack3d import PowerGridStack
from repro.scenarios.spec import Scenario, ScenarioSet


class _ColumnSplitVDA(VDAPolicy):
    """Different policies on disjoint scenario-column subsets.

    The batched ``"auto"`` rule must mirror the standalone choice *per
    scenario*: adaptive where the gain-bound damping is healthy,
    Anderson where a stiff design point forces tiny damping.  Each
    sub-policy sees the full ``(P, S)`` batch every iteration (keeping
    its per-column state aligned with the batch layout); the split only
    selects whose output each column uses, so column ``s`` still follows
    exactly the sequence a standalone solve of scenario ``s`` takes.
    """

    name = "auto-split"

    def __init__(self, parts: list[tuple[VDAPolicy, np.ndarray]]):
        self.parts = parts

    def reset(self, n_pillars) -> None:
        for policy, _ in self.parts:
            policy.reset(n_pillars)

    def update(
        self,
        v0: np.ndarray,
        residual: np.ndarray,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        out = np.array(v0, copy=True)
        for policy, cols in self.parts:
            sub = cols if active is None else (cols & active)
            v_new = policy.update(v0, residual, active=sub)
            out[:, cols] = v_new[:, cols]
        return out


@dataclass
class BatchedVPConfig:
    """Tuning knobs of the batched solver.

    The inner solver is always the cached-direct plane factorization --
    sharing it across scenario columns is the engine's reason to exist.
    ``vda`` accepts the same policy names as :class:`~repro.core.vp.VPConfig`;
    damping auto-scales per scenario from each design point's pillar
    gain bound when ``eta`` is left unset.
    """

    outer_tol: float = 1e-4
    max_outer: int = 200
    vda: str | VDAPolicy = "auto"
    eta: float | None = None
    record_history: bool = True
    raise_on_divergence: bool = False
    #: Layer-0 seed: ``"pin"`` (paper) or ``"loadshare"`` (pre-drop each
    #: pillar by its load share; same rule as VPConfig.v0_init, applied
    #: per scenario column).
    v0_init: str = "pin"

    def __post_init__(self) -> None:
        if self.outer_tol <= 0:
            raise ReproError("outer_tol must be positive")
        if self.max_outer < 1:
            raise ReproError("max_outer must be >= 1")
        if self.v0_init not in ("pin", "loadshare"):
            raise ReproError(
                f"unknown v0_init {self.v0_init!r}; use 'pin' or 'loadshare'"
            )


@dataclass
class BatchOuterRecord:
    """Telemetry of one batched outer iteration."""

    iteration: int
    active_scenarios: int
    max_vdiff: np.ndarray  # (S,) snapshot (inf until first visited)


@dataclass
class BatchedVPStats:
    """Cost accounting of one batched solve."""

    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(
        default_factory=lambda: {"cvn": 0.0, "tsv": 0.0, "propagate": 0.0, "vda": 0.0}
    )
    outer_iterations: int = 0
    #: Sum over outer iterations of the number of still-active scenario
    #: columns -- the work actually back-substituted.  A sequential sweep
    #: would pay ``sum(per-scenario outer iterations)`` single columns
    #: plus S factorization setups.
    column_solves: int = 0
    memory_bytes: int = 0


@dataclass
class BatchedVPResult:
    """Per-scenario solutions of a batched sweep.

    Arrays carry the scenario axis *last*: ``voltages[l, i, j, s]`` is
    tier ``l``'s node voltage under scenario ``s`` (ordering matches
    ``scenario_names``).
    """

    voltages: np.ndarray          # (T, R, C, S)
    converged: np.ndarray         # (S,) bool
    outer_iterations: np.ndarray  # (S,) retirement iteration per scenario
    max_vdiff: np.ndarray         # (S,)
    pillar_v0: np.ndarray         # (P, S)
    pillar_currents: np.ndarray   # (P, S)
    scenario_names: list[str]
    history: list[BatchOuterRecord]
    stats: BatchedVPStats
    info_v_pin: float = 0.0

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_names)

    def scenario_index(self, name: str) -> int:
        """Column index of the scenario named ``name``.

        Raises
        ------
        ReproError
            If no scenario in the batch carries that name.
        """
        try:
            return self.scenario_names.index(name)
        except ValueError:
            raise ReproError(f"no scenario named {name!r}") from None

    def scenario_voltages(self, name_or_index) -> np.ndarray:
        """One scenario's ``(T, R, C)`` voltage field."""
        index = (
            name_or_index
            if isinstance(name_or_index, (int, np.integer))
            else self.scenario_index(name_or_index)
        )
        return self.voltages[..., index]

    def worst_ir_drop(self, v_nominal: float | None = None) -> np.ndarray:
        """``(S,)`` worst IR drop per scenario."""
        from repro.analysis.irdrop import batch_worst_ir_drop

        reference = self.info_v_pin if v_nominal is None else v_nominal
        return batch_worst_ir_drop(self.voltages, reference)


class BatchedVPSolver:
    """VP solver vectorized over a scenario set sharing one topology.

    Structure-dependent setup -- the grouped plane factorizations, the
    per-scenario RHS batches, and the ``(T, P, S)`` segment-resistance
    table -- happens once in the constructor; :meth:`solve` runs the
    lockstep outer iteration with early retirement.
    """

    def __init__(
        self,
        stack: PowerGridStack,
        scenarios,
        config: BatchedVPConfig | None = None,
        *,
        planes: ReducedPlaneSystem | None = None,
    ):
        t_start = time.perf_counter()
        self.stack = stack
        self.scenarios = ScenarioSet.ensure(scenarios)
        self.config = config or BatchedVPConfig()
        self.rows, self.cols = stack.rows, stack.cols
        self.n_tiers = stack.n_tiers
        self.n_scenarios = len(self.scenarios)
        self.has_pin = stack.pillars.has_pin
        self.v_pin = stack.v_pin

        if planes is None:
            planes = ReducedPlaneSystem(stack, factorize=True, pillar_rows=True)
        elif not (planes.factorized and planes.has_pillar_rows):
            raise ReproError(
                "a pre-built plane system must be factorized with pillar rows"
            )
        # A pre-built system (e.g. from a PlaneFactorCache) shares this
        # stack's plane *geometry*; base RHS vectors may be stale, so the
        # solve below always passes explicit per-scenario RHS batches.
        self.planes = planes
        self.pillar_flat = self.planes.pillar_flat
        n_pillars = self.pillar_flat.size

        # Per-tier conductance multipliers (metal width): alpha (T, S).
        alpha = self.scenarios.plane_scale_matrix(self.n_tiers)
        self.plane_scale = alpha
        self._has_plane_scale = bool(np.any(alpha != 1.0))

        # Per-scenario right-hand sides: (n_free, S) / (P, S) per tier.
        # The pad term carries the plane scaling (pads are conductances of
        # the scaled plane); loads are currents and scale independently.
        load_scales = self.scenarios.load_scale_matrix(self.n_tiers)
        self._b_free: list[np.ndarray] = []
        self._b_pillar: list[np.ndarray] = []
        for l, tier in enumerate(stack.tiers):
            pad_term = (tier.g_pad * tier.v_pad).ravel()
            loads = tier.loads.ravel()
            rhs = (
                pad_term[:, None] * alpha[l][None, :]
                - loads[:, None] * load_scales[l][None, :]
            )
            self._b_free.append(np.ascontiguousarray(rhs[self.planes.free]))
            self._b_pillar.append(np.ascontiguousarray(rhs[self.pillar_flat]))

        # Segment resistances as a (T, P, S) design tensor (scalar design
        # knob plus any per-segment process spread).
        self.r_seg = self.scenarios.r_seg_table(stack.pillars.r_seg)

        # Per-scenario stability bound (see VoltagePropagationSolver):
        # gain_bound[p, s] = prod_l (1 + r_seg[l, p, s] * alpha_0 G_deg(p)),
        # mirroring the standalone solver, which reads the (scaled)
        # degree conductance off tier 0.
        degree = stack.tiers[0].degree_conductance().ravel()[self.pillar_flat]
        degree_s = degree[:, None] * alpha[0][None, :]
        gain_bound = np.ones((n_pillars, self.n_scenarios))
        for l in range(self.n_tiers):
            gain_bound *= 1.0 + self.r_seg[l] * degree_s
        self.pillar_gain_bound = gain_bound
        peak = np.maximum(gain_bound.max(axis=0), 1.0) if n_pillars else np.ones(
            self.n_scenarios
        )
        self.auto_eta = np.minimum(0.5, 1.0 / peak)

        # Residual voltage scale of un-pinned pillars, per scenario.
        if not np.all(self.has_pin):
            series = (
                self.r_seg[:-1].sum(axis=0)
                if self.n_tiers > 1
                else np.zeros((n_pillars, self.n_scenarios))
            )
            self._r_unit = series + 1.0 / np.maximum(degree_s, 1e-12)
        else:
            self._r_unit = None

        self._setup_seconds = time.perf_counter() - t_start

    # ------------------------------------------------------------------
    def set_rhs(self, tier_rhs: list[np.ndarray]) -> None:
        """Replace the per-scenario plane right-hand sides.

        The constructor derives the RHS batches from the stack's static
        loads and the scenarios' load scales; drivers that move the RHS
        every solve -- the batched transient engine folds the
        backward-Euler history term ``(C/h) v_{k-1}`` into per-step
        loads -- push the full vectors here instead.  Matrices and
        factors are untouched (loads never enter them).

        Parameters
        ----------
        tier_rhs:
            One ``(rows * cols, S)`` array per tier: the full-node RHS
            ``g_pad * v_pad - loads`` of each scenario column, in the
            stack's row-major node order.  Sliced into the free/pillar
            partitions internally.

        Raises
        ------
        GridError
            On a tier-count or shape mismatch.
        """
        if len(tier_rhs) != self.n_tiers:
            raise GridError(
                f"expected {self.n_tiers} RHS arrays, got {len(tier_rhs)}"
            )
        n = self.rows * self.cols
        b_free, b_pillar = [], []
        for l, rhs in enumerate(tier_rhs):
            rhs = np.asarray(rhs, dtype=float)
            if rhs.shape != (n, self.n_scenarios):
                raise GridError(
                    f"tier {l} RHS shape {rhs.shape} != "
                    f"{(n, self.n_scenarios)}"
                )
            b_free.append(np.ascontiguousarray(rhs[self.planes.free]))
            b_pillar.append(np.ascontiguousarray(rhs[self.pillar_flat]))
        self._b_free = b_free
        self._b_pillar = b_pillar

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Solver state: shared plane blocks plus the batched RHS/field
        arrays."""
        total = self.planes.memory_bytes
        for b_f, b_p in zip(self._b_free, self._b_pillar):
            total += b_f.nbytes + b_p.nbytes
        total += self.r_seg.nbytes + self.pillar_gain_bound.nbytes
        # Voltage fields and pillar batch vectors.
        total += self.n_tiers * self.rows * self.cols * self.n_scenarios * 8
        total += 4 * self.pillar_flat.size * self.n_scenarios * 8
        return int(total)

    def _resolve_vda_policy(self) -> VDAPolicy:
        """Materialize the policy with per-scenario damping.

        Concrete names go through the rule shared with the standalone
        solver (:func:`repro.core.vp.resolve_vda_policy`), fed the
        ``(S,)`` per-scenario damping vector.  ``"auto"`` on a batch
        that mixes healthy and stiff design points splits column-wise so
        every scenario gets the same policy its standalone solve would
        pick (exact-parity contract)."""
        config = self.config
        if not isinstance(config.vda, VDAPolicy) and config.vda == "auto":
            soft = self.auto_eta >= AUTO_ETA_THRESHOLD
            if soft.any() and (~soft).any():
                eta = self.auto_eta if config.eta is None else config.eta
                return _ColumnSplitVDA(
                    [
                        (make_vda_policy("adaptive", eta0=eta), soft),
                        (
                            make_vda_policy(
                                "anderson", m=AUTO_ANDERSON_WINDOW, eta0=eta
                            ),
                            ~soft,
                        ),
                    ]
                )
        return resolve_vda_policy(config.vda, config.eta, self.auto_eta)

    def _initial_v0(self) -> np.ndarray:
        """Per-scenario layer-0 seed (``(P, S)``): the pin voltage, or
        :func:`repro.core.vp.loadshare_v0` applied with each scenario's
        load scales and segment resistances -- column ``s`` matches what
        a standalone solve of scenario ``s`` seeds."""
        n_pillars = self.pillar_flat.size
        if self.config.v0_init == "pin" or n_pillars == 0:
            return np.full((n_pillars, self.n_scenarios), self.v_pin)
        base_totals = np.array(
            [tier.total_load() for tier in self.stack.tiers]
        )
        load_scales = self.scenarios.load_scale_matrix(self.n_tiers)
        totals = base_totals[:, None] * load_scales  # (T, S)
        return loadshare_v0(self.v_pin, self.r_seg, totals, n_pillars)

    # ------------------------------------------------------------------
    def solve(self, v0: np.ndarray | None = None) -> BatchedVPResult:
        """Run the lockstep outer iteration with early retirement.

        Every outer iteration back-substitutes the still-active scenario
        columns through the shared plane factors (CVN), accumulates TSV
        currents, propagates voltages bottom-up, and applies the VDA
        update column-wise; scenarios whose residual drops under
        ``config.outer_tol`` retire early and their voltage fields are
        frozen.

        Parameters
        ----------
        v0:
            Optional layer-0 TSV voltage seed: ``(P,)`` seeds every
            scenario alike, ``(P, S)`` seeds each column (e.g. the
            ``pillar_v0`` of a previous solve for warm starts).  Default
            is the per-scenario ``config.v0_init`` rule.

        Returns
        -------
        BatchedVPResult
            Per-scenario voltage fields ``(T, R, C, S)``, convergence
            flags, retirement iterations, final pillar voltages and
            currents, plus cost accounting (:class:`BatchedVPStats`).

        Raises
        ------
        GridError
            If ``v0`` has neither of the accepted shapes.
        ConvergenceError
            When ``config.raise_on_divergence`` is set and any scenario
            is still above tolerance after ``config.max_outer``
            iterations.
        """
        config = self.config
        t_start = time.perf_counter()
        n_pillars = self.pillar_flat.size
        n_scen = self.n_scenarios
        if v0 is None:
            v0 = self._initial_v0()
        else:
            v0 = np.array(v0, dtype=float)
            if v0.shape == (n_pillars,):
                v0 = np.repeat(v0[:, None], n_scen, axis=1)
            elif v0.shape != (n_pillars, n_scen):
                raise GridError(
                    f"v0 has shape {v0.shape}, expected ({n_pillars},) "
                    f"or ({n_pillars}, {n_scen})"
                )

        policy = self._resolve_vda_policy()
        policy.reset((n_pillars, n_scen))

        n = self.rows * self.cols
        # Uninitialized is safe: every column is stored either when its
        # scenario retires or at loop exit (stragglers) -- and 33 MB+
        # memsets per solve are measurable in the transient step loop.
        voltages = np.empty((self.n_tiers, n, n_scen))
        stats = BatchedVPStats(setup_seconds=self._setup_seconds)
        phase = stats.phase_seconds
        tr = obs.tracer()
        reg = obs.metrics()
        residual_series = obs.active_series("batch.residual")
        history: list[BatchOuterRecord] = []
        active = np.ones(n_scen, dtype=bool)
        converged = np.zeros(n_scen, dtype=bool)
        outer_counts = np.zeros(n_scen, dtype=int)
        max_f = np.full(n_scen, np.inf)
        residual_full = np.zeros((n_pillars, n_scen))
        pillar_currents = np.zeros((n_pillars, n_scen))

        def narrow(matrix: np.ndarray, idx: np.ndarray) -> np.ndarray:
            """Column subset without a copy when every scenario is live."""
            return matrix if idx.size == n_scen else matrix[:, idx]

        idx = np.flatnonzero(active)
        fields: list[np.ndarray] = []
        in_place = False
        for outer in range(1, config.max_outer + 1):
            idx = np.flatnonzero(active)
            stats.column_solves += idx.size
            reg.add("batch.column_solves", int(idx.size))
            pillar_v = v0[:, idx].copy() if idx.size != n_scen else v0.copy()
            cumulative = np.zeros((n_pillars, idx.size))
            fields = []
            # Full-width iterations assemble straight into the result
            # buffer, so retirement needs no copy for them.
            in_place = idx.size == n_scen

            for l in range(self.n_tiers):
                t0 = time.perf_counter()
                scale = None
                if self._has_plane_scale:
                    alpha_l = self.plane_scale[l]
                    scale = alpha_l if idx.size == n_scen else alpha_l[idx]
                x_free = self.planes.solve_free(
                    l, pillar_v, b_free=narrow(self._b_free[l], idx),
                    scale=scale,
                )
                v_full = self.planes.assemble(
                    x_free, pillar_v, out=voltages[l] if in_place else None
                )
                fields.append(v_full)
                dt = time.perf_counter() - t0
                phase["cvn"] += dt
                if tr.enabled:
                    tr.add_complete(
                        "cvn", t0, dt, outer=outer, tier=l, columns=int(idx.size)
                    )

                t0 = time.perf_counter()
                drawn = self.planes.drawn_currents(
                    l, v_full, b_pillar=narrow(self._b_pillar[l], idx),
                    scale=scale,
                )
                cumulative += drawn
                dt = time.perf_counter() - t0
                phase["tsv"] += dt
                if tr.enabled:
                    tr.add_complete(
                        "tsv", t0, dt, outer=outer, tier=l, columns=int(idx.size)
                    )

                t0 = time.perf_counter()
                pillar_v = pillar_v + cumulative * narrow(self.r_seg[l], idx)
                phase["propagate"] += time.perf_counter() - t0

            pillar_currents[:, idx] = cumulative
            if self._r_unit is None:
                residual = self.v_pin - pillar_v
            else:
                residual = np.where(
                    self.has_pin[:, None],
                    self.v_pin - pillar_v,
                    -cumulative * narrow(self._r_unit, idx),
                )
            residual_full[:, idx] = residual
            f_active = (
                np.max(np.abs(residual), axis=0)
                if n_pillars
                else np.zeros(idx.size)
            )
            max_f[idx] = f_active
            outer_counts[idx] = outer
            if residual_series is not None and f_active.size:
                residual_series.append(outer, float(f_active.max()))

            # Retire freshly converged scenarios: freeze their voltage
            # fields now (still-active columns are rewritten every
            # iteration anyway, so they are only stored on retirement or
            # at loop exit).
            done = f_active <= config.outer_tol
            if np.any(done):
                reg.add("batch.retirements", int(done.sum()))
                cols = idx[done]
                if not in_place:
                    for l in range(self.n_tiers):
                        voltages[l][:, cols] = fields[l][:, done]
                converged[cols] = True
                active[cols] = False
            stats.outer_iterations = outer
            if config.record_history:
                history.append(
                    BatchOuterRecord(
                        iteration=outer,
                        active_scenarios=int(active.sum()),
                        max_vdiff=max_f.copy(),
                    )
                )
            if not active.any():
                break

            t0 = time.perf_counter()
            # Full-width update, masked write-back: retired columns stay
            # frozen while the policy's per-column state keeps indexing
            # consistent with the batch layout.
            v_new = policy.update(v0, residual_full, active=active)
            live = np.flatnonzero(active)
            v0[:, live] = v_new[:, live]
            phase["vda"] += time.perf_counter() - t0

        if active.any() and not in_place:
            # max_outer exhausted: store the stragglers' last fields
            # (``fields`` columns follow ``idx`` of the final iteration;
            # full-width iterations already wrote in place).
            live = active[idx]
            cols = np.flatnonzero(active)
            for l in range(self.n_tiers):
                voltages[l][:, cols] = fields[l][:, live]

        stats.solve_seconds = time.perf_counter() - t_start
        stats.memory_bytes = self.memory_bytes
        reg.add("batch.outer_iterations", stats.outer_iterations)
        if tr.enabled:
            tr.add_complete(
                "batch.solve", t_start, stats.solve_seconds,
                scenarios=n_scen, outer_iterations=stats.outer_iterations,
            )
        result = BatchedVPResult(
            voltages=voltages.reshape(
                self.n_tiers, self.rows, self.cols, n_scen
            ),
            converged=converged,
            outer_iterations=outer_counts,
            max_vdiff=max_f,
            pillar_v0=v0,
            pillar_currents=pillar_currents,
            scenario_names=self.scenarios.names,
            history=history,
            stats=stats,
        )
        result.info_v_pin = self.v_pin
        if config.raise_on_divergence and not converged.all():
            stragglers = [
                name
                for name, ok in zip(result.scenario_names, converged)
                if not ok
            ]
            raise ConvergenceError(
                f"{len(stragglers)} scenario(s) did not converge in "
                f"{config.max_outer} outer iterations: {stragglers[:5]}",
                stats.outer_iterations,
                float(max_f.max()),
            )
        return result


def solve_vp_batch(
    stack: PowerGridStack, scenarios, **config_kwargs
) -> BatchedVPResult:
    """One-shot convenience: build a batched solver and run it."""
    return BatchedVPSolver(
        stack, scenarios, BatchedVPConfig(**config_kwargs)
    ).solve()


__all__ = [
    "BatchOuterRecord",
    "BatchedVPConfig",
    "BatchedVPResult",
    "BatchedVPSolver",
    "BatchedVPStats",
    "Scenario",
    "solve_vp_batch",
]
