"""Voltage Difference Adjustment (VDA) policies -- the VP outer update.

After one bottom-up propagation pass, each pillar ``j`` reports a residual
``F(j)``: for pinned pillars the gap ``VDD - V'dd(j)`` between the nominal
rail and the propagated source voltage; for un-pinned pillars the leftover
pillar current expressed in volts.  VDA turns ``F`` into a correction of
the layer-0 boundary guesses ``V0``.

The paper prescribes a damped update ``V0 += eta * F`` with ``eta << 1``
chosen so "the voltage difference of the new state [is] smaller than the
previous iteration" (§III-C).  :class:`FixedEtaVDA` is that rule verbatim;
:class:`AdaptiveEtaVDA` automates the shrink-on-growth safeguard;
:class:`PerPillarSecantVDA` (the library default) estimates each pillar's
gain ``dF/dV0`` from consecutive iterates -- a diagonal quasi-Newton
update that typically converges in a handful of outer iterations;
:class:`AndersonVDA` applies windowed Anderson acceleration to the same
fixed-point map.  Benchmark E8 compares all four.

Every policy is batch-aware: ``V0`` and ``F`` may be ``(P,)`` vectors
(one scenario) or ``(P, S)`` matrices (``S`` scenarios solved in
lockstep by the batched engine).  Columns are independent -- residual
norms, damping factors, secant gains, and Anderson windows are kept per
scenario -- so the batched iteration of column ``s`` reproduces exactly
the sequence a standalone solve of scenario ``s`` would take.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ReproError


def _scenario_norm(residual: np.ndarray):
    """``max_j |F_j|`` per scenario: a float for ``(P,)`` residuals, an
    ``(S,)`` array for ``(P, S)`` batches (empty pillar sets give 0)."""
    if residual.ndim == 1:
        return float(np.max(np.abs(residual))) if residual.size else 0.0
    if residual.shape[0] == 0:
        return np.zeros(residual.shape[1])
    return np.max(np.abs(residual), axis=0)


class VDAPolicy:
    """Interface: :meth:`update` maps (V0, residual F) to the next V0.

    Implementations accept ``(P,)`` single-scenario vectors or ``(P, S)``
    scenario batches and keep any internal state column-independent.
    ``active`` (an ``(S,)`` mask, batched calls only) marks the columns
    whose updated values the caller will use -- policies with per-column
    work may skip retired columns, but state must stay full-width.
    """

    name = "base"

    def reset(self, n_pillars: int | tuple[int, ...]) -> None:
        """Prepare for a fresh solve; ``n_pillars`` is ``P`` or the batch
        shape ``(P, S)``."""

    def update(
        self,
        v0: np.ndarray,
        residual: np.ndarray,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError


class FixedEtaVDA(VDAPolicy):
    """The paper's basic rule: ``V0 += eta * F`` with constant damping.

    ``eta`` may be a scalar or an ``(S,)`` per-scenario array (the batch
    engine auto-scales damping per design point).
    """

    name = "fixed"

    def __init__(self, eta: float | np.ndarray = 0.5):
        if np.any(np.asarray(eta) <= 0):
            raise ReproError("eta must be positive")
        self.eta = eta

    def reset(self, n_pillars: int | tuple[int, ...]) -> None:
        del n_pillars

    def update(
        self,
        v0: np.ndarray,
        residual: np.ndarray,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        del active  # elementwise update: no per-column work to skip
        return v0 + self.eta * residual


class AdaptiveEtaVDA(VDAPolicy):
    """Fixed-eta with the paper's monotonicity principle automated.

    Grows ``eta`` while ``||F||_inf`` keeps shrinking; on growth of the
    residual (the "new state" got worse), shrinks ``eta`` and keeps going.
    """

    name = "adaptive"

    def __init__(
        self,
        eta0: float | np.ndarray = 0.5,
        grow: float = 1.25,
        shrink: float = 0.5,
        eta_max: float = 1.5,
        eta_min: float = 1e-9,
    ):
        if not 0 < shrink < 1 < grow:
            raise ReproError("need shrink in (0,1) and grow > 1")
        self.eta0 = eta0
        self.grow = grow
        self.shrink = shrink
        self.eta_max = eta_max
        self.eta_min = eta_min
        self.eta = eta0
        self._prev_norm = None

    def reset(self, n_pillars: int | tuple[int, ...]) -> None:
        del n_pillars
        self.eta = self.eta0
        self._prev_norm = None

    def update(
        self,
        v0: np.ndarray,
        residual: np.ndarray,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        del active  # elementwise update: no per-column work to skip
        # Per-scenario norms: each batch column grows/shrinks its own eta.
        norm = _scenario_norm(residual)
        if self._prev_norm is not None:
            if np.ndim(norm) == 0:
                if norm < self._prev_norm:
                    self.eta = min(float(np.max(self.eta)) * self.grow, self.eta_max)
                else:
                    self.eta = max(float(np.min(self.eta)) * self.shrink, self.eta_min)
            else:
                self.eta = np.clip(
                    np.where(
                        norm < self._prev_norm,
                        np.asarray(self.eta) * self.grow,
                        np.asarray(self.eta) * self.shrink,
                    ),
                    self.eta_min,
                    self.eta_max,
                )
        self._prev_norm = norm
        return v0 + self.eta * residual


class PerPillarSecantVDA(VDAPolicy):
    """Diagonal secant (quasi-Newton) VDA -- the library default.

    The outer map is affine: ``F(V0) = F* - A (V0 - V0*)`` with an
    (unknown) Jacobian ``-A``.  From two consecutive iterates each pillar
    gets a finite-difference gain estimate
    ``a_j ~= -(F_j - F_j_prev) / (V0_j - V0_j_prev)`` and the Newton-like
    update ``V0_j += F_j / a_j``.  Gains are clamped to a sane range and
    the first step falls back to the damped rule.
    """

    name = "secant"

    def __init__(
        self,
        eta0: float | np.ndarray = 0.5,
        gain_min: float = 0.5,
        gain_max: float = 1e6,
        dv_floor: float = 1e-9,
    ):
        self.eta0 = eta0
        self.gain_min = gain_min
        self.gain_max = gain_max
        # Pillar movements below this (volts) are too noise-dominated to
        # yield a usable finite-difference gain (inner solves are inexact).
        self.dv_floor = dv_floor
        self._prev_v0: np.ndarray | None = None
        self._prev_f: np.ndarray | None = None
        self._gain: np.ndarray | None = None

    def reset(self, n_pillars: int | tuple[int, ...]) -> None:
        self._prev_v0 = None
        self._prev_f = None
        self._gain = np.full(n_pillars, np.nan)

    def update(
        self,
        v0: np.ndarray,
        residual: np.ndarray,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        del active  # elementwise update: no per-column work to skip
        if self._gain is None:
            self._gain = np.full(v0.shape, np.nan)
        if self._prev_v0 is not None:
            dv = v0 - self._prev_v0
            df = residual - self._prev_f
            with np.errstate(divide="ignore", invalid="ignore"):
                estimate = -df / dv
            valid = (np.abs(dv) > self.dv_floor) & np.isfinite(estimate)
            self._gain[valid] = np.clip(
                estimate[valid], self.gain_min, self.gain_max
            )
        step = np.where(
            np.isnan(self._gain), self.eta0 * residual, residual / self._gain
        )
        # Trust region: a Newton step should not overshoot the residual
        # scale (gains are >= 1 for pinned pillars at the true Jacobian).
        # Per-scenario caps keep batch columns independent.
        cap = 2.0 * np.asarray(_scenario_norm(residual))
        if residual.size and np.any(cap > 0):
            step = np.clip(step, -cap, cap)
        self._prev_v0 = v0.copy()
        self._prev_f = residual.copy()
        return v0 + step


class AndersonVDA(VDAPolicy):
    """Anderson acceleration (type II) on the damped fixed-point map.

    Keeps a window of the last ``m`` (V0, F) pairs and extrapolates by a
    least-squares combination that minimizes the residual -- the standard
    accelerator for Picard iterations like VP's outer loop.
    """

    name = "anderson"

    def __init__(self, m: int = 4, beta: float = 1.0, eta0: float = 0.5):
        if m < 1:
            raise ReproError("window m must be >= 1")
        self.m = m
        self.beta = beta
        self.eta0 = eta0
        self._v0s: deque[np.ndarray] = deque(maxlen=m + 1)
        self._fs: deque[np.ndarray] = deque(maxlen=m + 1)

    def reset(self, n_pillars: int | tuple[int, ...]) -> None:
        del n_pillars
        self._v0s.clear()
        self._fs.clear()

    def update(
        self,
        v0: np.ndarray,
        residual: np.ndarray,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        # Scale residuals so the fixed-point map is g(v) = v + eta0 * F.
        f = self.eta0 * residual
        self._v0s.append(v0.copy())
        self._fs.append(np.array(f, dtype=float, copy=True))
        k = len(self._fs)
        if k == 1:
            return v0 + f
        # Differences of residuals / iterates over the window; for a
        # (P, S) batch the window axis is inserted after the pillar axis.
        f_mat = np.stack([self._fs[i + 1] - self._fs[i] for i in range(k - 1)], axis=1)
        v_mat = np.stack(
            [self._v0s[i + 1] - self._v0s[i] for i in range(k - 1)], axis=1
        )
        if residual.ndim == 1:
            gamma, *_ = np.linalg.lstsq(f_mat, f, rcond=None)
            return v0 + self.beta * f - (v_mat + self.beta * f_mat) @ gamma
        # Batched: each scenario column extrapolates with its own window
        # (the least-squares problems are independent).  ``active`` lets
        # the caller skip retired columns it will discard anyway.
        v_new = v0 + self.beta * f
        columns = (
            range(residual.shape[1]) if active is None else np.flatnonzero(active)
        )
        for s in columns:
            gamma, *_ = np.linalg.lstsq(f_mat[:, :, s], f[:, s], rcond=None)
            v_new[:, s] -= (v_mat[:, :, s] + self.beta * f_mat[:, :, s]) @ gamma
        return v_new


_POLICIES = {
    "fixed": FixedEtaVDA,
    "adaptive": AdaptiveEtaVDA,
    "secant": PerPillarSecantVDA,
    "anderson": AndersonVDA,
}


def make_vda_policy(name: str, **kwargs) -> VDAPolicy:
    """String-keyed factory (``fixed``/``adaptive``/``secant``/``anderson``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ReproError(
            f"unknown VDA policy {name!r}; use one of {sorted(_POLICIES)}"
        ) from None
    return cls(**kwargs)
