"""Free/pillar-partitioned plane systems -- the shared CVN kernel.

The CVN phase of the VP method solves, per tier, the reduced system

    A_ff x_f = b_f - A_fp v_p

with the pillar (TSV) nodes held at Dirichlet values ``v_p``.  Both the
single-scenario :class:`~repro.core.vp.VoltagePropagationSolver` and the
batched scenario engine (:mod:`repro.core.batch`) run exactly this solve;
this module owns the partitioned structure so they share one code path:

* tiers with identical wire geometry share one matrix *and* one
  factorization (the paper replicates a single tier, so a 3-tier stack
  factorizes once);
* the factorized solve accepts a multi-column right-hand side -- ``v_p``
  of shape ``(P,)`` is simply the batch-size-1 special case of ``(P, S)``;
* pillar drawn currents come from the stored pillar rows of the full
  plane matrix (``A_p v - b_p``), again single- or multi-column.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.core.tsv import plane_matrices
from repro.grid.stack3d import PowerGridStack
from repro.linalg.direct import DirectSolver
from repro.obs.registry import Counter


def tier_signature(tier) -> bytes:
    """Geometry signature of one tier's plane matrix: the wire and pad
    conductances plus the pad rail voltage (loads excluded -- they only
    enter the right-hand side)."""
    return (
        tier.g_h.tobytes()
        + tier.g_v.tobytes()
        + tier.g_pad.tobytes()
        + np.float64(tier.v_pad).tobytes()
    )


def stack_plane_signature(stack: PowerGridStack) -> bytes:
    """Signature of everything the partitioned plane systems depend on:
    per-tier matrix geometry plus the pillar (Dirichlet) positions.

    Two stacks with equal signatures produce identical
    :class:`ReducedPlaneSystem` structure and factors, so the systems may
    be shared -- the key of :class:`PlaneFactorCache`."""
    digest = hashlib.sha256()
    digest.update(np.int64([stack.rows, stack.cols, stack.n_tiers]).tobytes())
    digest.update(stack.pillars.positions.tobytes())
    for tier in stack.tiers:
        digest.update(tier_signature(tier))
    return digest.digest()


def group_tiers(stack: PowerGridStack) -> list[int]:
    """Map each tier to the index of the first tier sharing its wire
    geometry (conductances and pads; loads excluded)."""
    signatures: dict[bytes, int] = {}
    groups: list[int] = []
    for l, tier in enumerate(stack.tiers):
        groups.append(signatures.setdefault(tier_signature(tier), l))
    return groups


def _match_columns(vector: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Broadcast a per-tier base vector against a (n, S) batch array."""
    if reference.ndim == 2 and vector.ndim == 1:
        return vector[:, None]
    return vector


class ReducedPlaneSystem:
    """Per-tier reduced (free-node) systems of one stack.

    Parameters
    ----------
    stack:
        The 3-D grid whose tiers are partitioned.
    groups:
        Tier-sharing map as produced by :func:`group_tiers` (computed when
        omitted).  Tiers in one group share ``A_ff``/``A_fp``/``A_p`` and,
        when ``factorize`` is set, one LU factorization.
    planes:
        Pre-built per-tier ``(matrix, rhs)`` pairs from
        :func:`repro.core.tsv.plane_matrices`; rebuilt when omitted.
    factorize:
        Factorize each group's ``A_ff`` once (the ``direct`` inner
        solver).  When False the raw CSR blocks and Jacobi inverse
        diagonals are kept instead (the ``cg`` inner solver).
    pillar_rows:
        Also slice and keep the pillar rows ``A_p`` of the full plane
        matrices (enables :meth:`drawn_currents`).  The batched engine
        needs them; the single-scenario solver extracts drawn currents
        from the full matrices and skips the extra slicing/storage.
    """

    def __init__(
        self,
        stack: PowerGridStack,
        *,
        groups: list[int] | None = None,
        planes: list[tuple[sp.csr_matrix, np.ndarray]] | None = None,
        factorize: bool = True,
        pillar_rows: bool = False,
    ):
        self.stack = stack
        self.n = stack.rows * stack.cols
        self.pillar_flat = stack.pillar_flat_indices()
        self.groups = group_tiers(stack) if groups is None else groups
        self.planes = (
            plane_matrices(stack, groups=self.groups) if planes is None else planes
        )
        self.factorized = factorize
        self.has_pillar_rows = pillar_rows

        free_mask = np.ones(self.n, dtype=bool)
        free_mask[self.pillar_flat] = False
        self.free = np.flatnonzero(free_mask)

        self.a_ff: list = []          # DirectSolver (factorized) or CSR
        self.a_fp: list[sp.csr_matrix] = []
        self.a_pillar: list[sp.csr_matrix] = []
        self.jacobi_inv: list[np.ndarray] = []
        self.b_free: list[np.ndarray] = []
        self.b_pillar: list[np.ndarray] = []
        # Distinct LU factorizations this system performed (0 when
        # ``factorize=False``) -- the unit the Monte Carlo driver's
        # refactorization accounting is expressed in.  Kept in a local
        # instrument read through the ``n_factorizations`` property and
        # mirrored into the active obs registry.
        self._factorizations = Counter("planes.factorizations")
        tr = obs.tracer()
        cache: dict[int, tuple] = {}
        for l, (matrix, rhs) in enumerate(self.planes):
            group = self.groups[l]
            if group not in cache:
                a_ff = matrix[self.free][:, self.free].tocsr()
                a_fp = matrix[self.free][:, self.pillar_flat].tocsr()
                a_p = (
                    matrix[self.pillar_flat, :].tocsr() if pillar_rows else None
                )
                if factorize:
                    with tr.span("factorize", tier=l, n_free=self.free.size):
                        solver = DirectSolver(a_ff)
                    cache[group] = (solver, a_fp, a_p, None)
                    self._factorizations.add()
                    obs.add("planes.factorizations")
                else:
                    cache[group] = (a_ff, a_fp, a_p, 1.0 / a_ff.diagonal())
            a_ff, a_fp, a_p, inv_diag = cache[group]
            self.a_ff.append(a_ff)
            self.a_fp.append(a_fp)
            if a_p is not None:
                self.a_pillar.append(a_p)
            if inv_diag is not None:
                self.jacobi_inv.append(inv_diag)
            self.b_free.append(rhs[self.free])
            if pillar_rows:
                self.b_pillar.append(rhs[self.pillar_flat])

    # ------------------------------------------------------------------
    @property
    def n_factorizations(self) -> int:
        """Distinct LU factorizations performed (read-through to the
        local instrument so counter-asserting callers see plain ints)."""
        return self._factorizations.value

    @property
    def n_free(self) -> int:
        return self.free.size

    @property
    def n_pillars(self) -> int:
        return self.pillar_flat.size

    def reduced_rhs(
        self,
        tier_index: int,
        pillar_v: np.ndarray,
        b_free: np.ndarray | None = None,
        scale=None,
    ) -> np.ndarray:
        """``b_f - scale * A_fp v_p`` for one tier; ``pillar_v`` is ``(P,)``
        or ``(P, S)`` and an explicit per-scenario ``b_free`` ``(n_free, S)``
        overrides the tier's base RHS.

        ``scale`` is the conductance multiplier of the scaled-factor fast
        path (see :meth:`solve_free`): a scalar, or an ``(S,)`` vector
        applying per column.
        """
        base = self.b_free[tier_index] if b_free is None else b_free
        if b_free is not None and pillar_v.ndim == 2 and not pillar_v.any():
            # Pure back-substitution (low-rank Z and correction solves
            # pass zero pillar voltages): skip the coupling product.
            return np.asfortranarray(base)
        coupling = self.a_fp[tier_index] @ pillar_v
        if scale is not None:
            coupling = coupling * scale
        if coupling.ndim == 2:
            # Subtract straight into a Fortran-ordered buffer: SuperLU
            # consumes multi-column RHS column-contiguous, so building it
            # in that layout here saves a full copy in solve_free.
            out = np.empty(coupling.shape, order="F")
            np.subtract(_match_columns(base, coupling), coupling, out=out)
            return out
        return base - coupling

    def solve_free(
        self,
        tier_index: int,
        pillar_v: np.ndarray,
        b_free: np.ndarray | None = None,
        scale=None,
        trans: str = "N",
    ) -> np.ndarray:
        """Solve one tier's reduced system for the free-node voltages.

        Single- and multi-column ``pillar_v`` run through the same cached
        factorization; the multi-column case back-substitutes all
        scenarios in one call.

        ``scale`` enables the **scaled-factor fast path**: when a
        scenario multiplies every conductance of this tier by ``alpha``
        (a metal-width / global process scaling), the scaled system is
        ``alpha A_ff x = b_f - alpha A_fp v_p``, so the *unscaled*
        factorization is reused -- scale the coupling, back-substitute,
        divide by ``alpha``.  Scalar, or ``(S,)`` applying per column.

        ``trans="T"`` back-substitutes on the transposed factors (see
        :meth:`solve_free_transpose`).
        """
        if not self.factorized:
            raise RuntimeError(
                "solve_free needs factorize=True (use reduced_rhs with an "
                "iterative solver otherwise)"
            )
        rhs = self.reduced_rhs(tier_index, pillar_v, b_free, scale=scale)
        if rhs.ndim == 2 and not rhs.flags.f_contiguous:
            rhs = np.asfortranarray(rhs)
        x = self.a_ff[tier_index].solve(rhs, trans=trans)
        if scale is not None:
            x = x / scale
        return x

    def solve_free_transpose(
        self,
        tier_index: int,
        pillar_v: np.ndarray,
        b_free: np.ndarray | None = None,
        scale=None,
    ) -> np.ndarray:
        """Adjoint (transpose) solve of one tier's reduced system.

        The adjoint of the 3-D grid system runs on ``G^T``; per tier
        that is ``A_ff^T x = g_f - A_pf^T v_p``.  The plane matrices are
        symmetric nodal Laplacians, so the coupling block ``A_pf^T``
        coincides with the stored ``A_fp`` -- what distinguishes this
        entry is the back-substitution on the *transposed* LU factors
        (``U^T L^T``), which makes the adjoint exact down to round-off
        without a single new factorization.  This is the hot path of the
        sensitivity engine (:mod:`repro.sensitivity.adjoint`); its
        zero-refactorization contract is counter-asserted through
        :class:`PlaneFactorCache` exactly like the Monte Carlo driver's.
        """
        return self.solve_free(
            tier_index, pillar_v, b_free=b_free, scale=scale, trans="T"
        )

    def assemble(
        self,
        x_free: np.ndarray,
        pillar_v: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Scatter free-node and pillar values into a full flat field
        (``(n,)`` or ``(n, S)``, matching the inputs).  ``out`` supplies
        the destination buffer -- the batched solvers scatter straight
        into their result arrays to skip a per-iteration copy."""
        if out is not None:
            field = out
        elif x_free.ndim == 2:
            field = np.empty((self.n, x_free.shape[1]))
        else:
            field = np.empty(self.n)
        field[self.free] = x_free
        field[self.pillar_flat] = pillar_v
        return field

    def drawn_currents(
        self,
        tier_index: int,
        v_full: np.ndarray,
        b_pillar: np.ndarray | None = None,
        scale=None,
    ) -> np.ndarray:
        """Current each pillar delivers into this plane: the KCL residual
        ``scale * A_p v - b_p`` at the pillar rows (``(P,)`` or ``(P, S)``).

        ``scale`` is the same conductance multiplier as in
        :meth:`solve_free` (the pillar rows of a scaled plane are
        ``alpha A_p``)."""
        if not self.has_pillar_rows:
            raise RuntimeError("drawn_currents needs pillar_rows=True")
        base = self.b_pillar[tier_index] if b_pillar is None else b_pillar
        product = self.a_pillar[tier_index] @ v_full
        if scale is not None:
            product = product * scale
        return product - _match_columns(base, product)

    def update_rhs(self, tier_index: int, rhs_full: np.ndarray) -> None:
        """Refresh one tier's base RHS after a load change (matrices and
        factors survive)."""
        self.planes[tier_index] = (self.planes[tier_index][0], rhs_full)
        self.b_free[tier_index] = rhs_full[self.free]
        if self.has_pillar_rows:
            self.b_pillar[tier_index] = rhs_full[self.pillar_flat]

    def low_rank_update(
        self,
        tier_index: int,
        u,
        c,
        v=None,
        *,
        z: np.ndarray | None = None,
        keep_z: bool = True,
    ):
        """Bind a Sherman-Morrison-Woodbury update ``A_ff -> A_ff + U C V^T``
        to this tier's cached factors.

        The returned :class:`repro.linalg.lowrank.LowRankUpdate` solves
        the *edited* reduced system for the cost of back-substitutions
        against the existing LU -- the ECO engine's primitive.  ``u``/``v``
        are ``(n_free, k)`` columns in the free-node partition; ``z``
        optionally supplies a precomputed ``A_ff^{-1} U`` (batched
        callers form all updates' ``Z`` blocks in one multi-column
        :meth:`solve_free` call).
        """
        from repro.linalg.lowrank import LowRankUpdate

        if not self.factorized:
            raise RuntimeError("low_rank_update needs factorize=True")
        zero_p = np.zeros(self.n_pillars)

        def base(rhs: np.ndarray) -> np.ndarray:
            pillar_v = zero_p if rhs.ndim == 1 else np.zeros(
                (self.n_pillars, rhs.shape[1])
            )
            return self.solve_free(tier_index, pillar_v, b_free=rhs)

        def base_t(rhs: np.ndarray) -> np.ndarray:
            pillar_v = zero_p if rhs.ndim == 1 else np.zeros(
                (self.n_pillars, rhs.shape[1])
            )
            return self.solve_free_transpose(tier_index, pillar_v, b_free=rhs)

        return LowRankUpdate(
            base, u, c, v, z=z, keep_z=keep_z, base_solve_transpose=base_t
        )

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Bytes held by the partitioned blocks (shared objects counted
        once)."""
        total = 0
        seen: set[int] = set()

        def once(obj, n_bytes: int) -> int:
            if id(obj) in seen:
                return 0
            seen.add(id(obj))
            return n_bytes

        def csr_bytes(matrix) -> int:
            return once(
                matrix,
                matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes,
            )

        for l in range(len(self.planes)):
            total += csr_bytes(self.a_fp[l]) + self.b_free[l].nbytes
            if self.has_pillar_rows:
                total += csr_bytes(self.a_pillar[l]) + self.b_pillar[l].nbytes
            block = self.a_ff[l]
            if self.factorized:
                total += once(block, block.memory_bytes)
            else:
                total += csr_bytes(block)
        for inv in self.jacobi_inv:
            total += once(inv, inv.nbytes)
        return int(total)


class PlaneFactorCache:
    """LU factor reuse across stacks keyed by plane-geometry signature.

    The Monte Carlo variation driver (:mod:`repro.stochastic`) solves
    hundreds of sampled grids.  Samples that only perturb TSV
    resistances, loads, or apply global conductance scalings leave the
    per-tier plane matrices bit-identical, so their
    :class:`ReducedPlaneSystem` (and its factors) can be shared; only
    samples that actually change wire conductance *fields* pay a fresh
    factorization.  The cache makes that policy explicit and countable:

    * ``factorizations`` -- total LU factorizations performed through the
      cache (the quantity benchmarks assert on: a TSV-only sweep must
      stay at the baseline count, i.e. zero *re*-factorizations);
    * ``hits`` / ``misses`` -- lookup accounting;
    * ``evictions`` -- entries LRU-evicted at capacity (an ECO session
      sweeping many geometry variants thrashes a too-small cache, and
      this counter is how that shows up in telemetry).

    The counters are read-through properties over local instruments,
    mirrored into the active :mod:`repro.obs` registry as
    ``cache.factorizations`` / ``cache.hits`` / ``cache.misses`` /
    ``cache.evictions`` / ``cache.pinned_overflow`` /
    ``cache.single_flight_waits``; the resident factor footprint is
    published as the ``cache.factor_bytes`` gauge.

    **Concurrency.**  The cache is thread-safe: lookup, insertion,
    eviction, and pin bookkeeping run under one lock, and factorization
    is *single-flight* -- when N threads miss on the same signature at
    once, exactly one builds the system (outside the lock, so unrelated
    geometries factorize in parallel) while the others block on a
    per-key event and then pick the shared entry up as a hit (counted
    in ``single_flight_waits``).  This is what lets a long-running
    service promote one cache to a cross-request shared resource: N
    concurrent requests for a popular grid pay exactly one LU.

    **Capacity.**  ``max_entries`` bounds the entry count and the
    optional ``max_bytes`` bounds the resident factor footprint; LRU
    eviction skips pinned entries.  When every evictable candidate is
    pinned the cache *does* exceed its bounds (callers need their
    systems regardless) but counts the event in ``pinned_overflow``
    instead of growing silently, and :meth:`unpin` re-runs the deferred
    eviction so an over-capacity cache shrinks as soon as pins release.

    Cached systems are built with ``pillar_rows=True`` (the batched
    engine needs the pillar rows).  NOTE: a cached system's *base*
    right-hand sides belong to the stack it was first built from;
    callers reusing a system for a same-geometry stack with different
    loads must pass explicit ``b_free``/``b_pillar`` (the batched solver
    always does).
    """

    def __init__(self, max_entries: int = 8, *, max_bytes: int | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._entries: dict[bytes, ReducedPlaneSystem] = {}
        #: Footprint recorded at insert time -- eviction bookkeeping must
        #: subtract exactly what was added, even under concurrent churn.
        self._entry_bytes: dict[bytes, int] = {}
        self._pinned: set[bytes] = set()
        #: In-flight factorizations: key -> event the builder sets once
        #: the entry is resident (or the build failed).
        self._building: dict[bytes, threading.Event] = {}
        self._factorizations = Counter("cache.factorizations")
        self._hits = Counter("cache.hits")
        self._misses = Counter("cache.misses")
        self._evictions = Counter("cache.evictions")
        self._pinned_overflow = Counter("cache.pinned_overflow")
        self._single_flight_waits = Counter("cache.single_flight_waits")
        self._factor_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def factorizations(self) -> int:
        return self._factorizations.value

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def pinned_overflow(self) -> int:
        """Times the cache went (or stayed) over capacity because every
        eviction candidate was pinned."""
        return self._pinned_overflow.value

    @property
    def single_flight_waits(self) -> int:
        """Lookups that blocked on another thread's in-flight
        factorization of the same signature instead of building."""
        return self._single_flight_waits.value

    @property
    def factor_bytes(self) -> int:
        """Bytes held by currently resident cached systems."""
        return self._factor_bytes

    def get(
        self, stack: PowerGridStack, *, pin: bool = False
    ) -> ReducedPlaneSystem:
        """Return the shared plane system for ``stack``'s geometry,
        factorizing (and counting) only on a signature miss.

        Thread-safe and single-flight: concurrent misses on one
        signature factorize once; the waiters count as hits (plus a
        ``single_flight_waits`` tally).

        ``pin`` exempts the entry from LRU eviction -- callers that hold
        a long-lived handle (the Monte Carlo driver's baseline) pin it so
        a churn of one-off geometries cannot push it out between their
        explicit ``get`` calls.
        """
        key = stack_plane_signature(stack)
        while True:
            with self._lock:
                system = self._entries.pop(key, None)
                if system is not None:
                    self._hits.add()
                    obs.add("cache.hits")
                    self._entries[key] = system  # refresh LRU position
                    if pin:
                        self._pinned.add(key)
                    return system
                in_flight = self._building.get(key)
                if in_flight is None:
                    # This thread builds; peers landing on the same key
                    # block on the event until the entry is resident.
                    self._building[key] = threading.Event()
                    self._misses.add()
                    obs.add("cache.misses")
                    break
            self._single_flight_waits.add()
            obs.add("cache.single_flight_waits")
            in_flight.wait()
            # Loop: normally a hit now; if the entry was already evicted
            # (or the peer's build failed) this thread becomes the builder.
        try:
            system = ReducedPlaneSystem(
                stack, factorize=True, pillar_rows=True
            )
        except BaseException:
            with self._lock:
                self._building.pop(key).set()  # release waiters to retry
            raise
        with self._lock:
            self._factorizations.add(system.n_factorizations)
            obs.add("cache.factorizations", system.n_factorizations)
            nbytes = system.memory_bytes
            self._entries[key] = system
            self._entry_bytes[key] = nbytes
            self._factor_bytes += nbytes
            if pin:
                self._pinned.add(key)
            self._evict_over_capacity(protect=key)
            obs.set_gauge("cache.factor_bytes", self._factor_bytes)
            self._building.pop(key).set()
        return system

    def _over_capacity(self) -> bool:
        return len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._factor_bytes > self.max_bytes
        )

    def _evict_over_capacity(self, protect: bytes | None = None) -> None:
        """LRU-evict unpinned entries until within bounds (caller holds
        the lock).  ``protect`` shields the entry being inserted.  When
        no candidate remains the overflow is counted, not hidden -- the
        deferred eviction happens on the next :meth:`unpin`."""
        while self._over_capacity():
            victim = next(
                (
                    k
                    for k in self._entries
                    if k not in self._pinned and k != protect
                ),
                None,
            )
            if victim is None:
                # Every evictable entry is pinned: one-off geometries
                # (fresh wire-field draws) churning a fully-pinned cache
                # used to grow it silently past max_entries.
                self._pinned_overflow.add()
                obs.add("cache.pinned_overflow")
                break
            self._factor_bytes -= self._entry_bytes.pop(victim)
            del self._entries[victim]
            self._evictions.add()
            obs.add("cache.evictions")

    def unpin(self, stack: PowerGridStack) -> bool:
        """Release a pin taken by ``get(stack, pin=True)``.

        The entry stays cached but becomes LRU-evictable again -- how a
        long-lived holder (an :class:`repro.eco.EcoSession` closing, a
        finished Monte Carlo run) hands its baseline factors back to the
        pool.  An over-capacity cache (see ``pinned_overflow``) performs
        its deferred eviction here, so releasing the last pin shrinks it
        immediately rather than waiting for the next miss.  Returns
        whether the geometry was actually pinned.
        """
        key = stack_plane_signature(stack)
        with self._lock:
            if key not in self._pinned:
                return False
            self._pinned.discard(key)
            if self._over_capacity():
                self._evict_over_capacity()
                obs.set_gauge("cache.factor_bytes", self._factor_bytes)
            return True
