"""Free/pillar-partitioned plane systems -- the shared CVN kernel.

The CVN phase of the VP method solves, per tier, the reduced system

    A_ff x_f = b_f - A_fp v_p

with the pillar (TSV) nodes held at Dirichlet values ``v_p``.  Both the
single-scenario :class:`~repro.core.vp.VoltagePropagationSolver` and the
batched scenario engine (:mod:`repro.core.batch`) run exactly this solve;
this module owns the partitioned structure so they share one code path:

* tiers with identical wire geometry share one matrix *and* one
  factorization (the paper replicates a single tier, so a 3-tier stack
  factorizes once);
* the factorized solve accepts a multi-column right-hand side -- ``v_p``
  of shape ``(P,)`` is simply the batch-size-1 special case of ``(P, S)``;
* pillar drawn currents come from the stored pillar rows of the full
  plane matrix (``A_p v - b_p``), again single- or multi-column.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.tsv import plane_matrices
from repro.grid.stack3d import PowerGridStack
from repro.linalg.direct import DirectSolver


def group_tiers(stack: PowerGridStack) -> list[int]:
    """Map each tier to the index of the first tier sharing its wire
    geometry (conductances and pads; loads excluded)."""
    signatures: dict[bytes, int] = {}
    groups: list[int] = []
    for l, tier in enumerate(stack.tiers):
        signature = (
            tier.g_h.tobytes()
            + tier.g_v.tobytes()
            + tier.g_pad.tobytes()
            + np.float64(tier.v_pad).tobytes()
        )
        groups.append(signatures.setdefault(signature, l))
    return groups


def _match_columns(vector: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Broadcast a per-tier base vector against a (n, S) batch array."""
    if reference.ndim == 2 and vector.ndim == 1:
        return vector[:, None]
    return vector


class ReducedPlaneSystem:
    """Per-tier reduced (free-node) systems of one stack.

    Parameters
    ----------
    stack:
        The 3-D grid whose tiers are partitioned.
    groups:
        Tier-sharing map as produced by :func:`group_tiers` (computed when
        omitted).  Tiers in one group share ``A_ff``/``A_fp``/``A_p`` and,
        when ``factorize`` is set, one LU factorization.
    planes:
        Pre-built per-tier ``(matrix, rhs)`` pairs from
        :func:`repro.core.tsv.plane_matrices`; rebuilt when omitted.
    factorize:
        Factorize each group's ``A_ff`` once (the ``direct`` inner
        solver).  When False the raw CSR blocks and Jacobi inverse
        diagonals are kept instead (the ``cg`` inner solver).
    pillar_rows:
        Also slice and keep the pillar rows ``A_p`` of the full plane
        matrices (enables :meth:`drawn_currents`).  The batched engine
        needs them; the single-scenario solver extracts drawn currents
        from the full matrices and skips the extra slicing/storage.
    """

    def __init__(
        self,
        stack: PowerGridStack,
        *,
        groups: list[int] | None = None,
        planes: list[tuple[sp.csr_matrix, np.ndarray]] | None = None,
        factorize: bool = True,
        pillar_rows: bool = False,
    ):
        self.stack = stack
        self.n = stack.rows * stack.cols
        self.pillar_flat = stack.pillar_flat_indices()
        self.groups = group_tiers(stack) if groups is None else groups
        self.planes = (
            plane_matrices(stack, groups=self.groups) if planes is None else planes
        )
        self.factorized = factorize
        self.has_pillar_rows = pillar_rows

        free_mask = np.ones(self.n, dtype=bool)
        free_mask[self.pillar_flat] = False
        self.free = np.flatnonzero(free_mask)

        self.a_ff: list = []          # DirectSolver (factorized) or CSR
        self.a_fp: list[sp.csr_matrix] = []
        self.a_pillar: list[sp.csr_matrix] = []
        self.jacobi_inv: list[np.ndarray] = []
        self.b_free: list[np.ndarray] = []
        self.b_pillar: list[np.ndarray] = []
        cache: dict[int, tuple] = {}
        for l, (matrix, rhs) in enumerate(self.planes):
            group = self.groups[l]
            if group not in cache:
                a_ff = matrix[self.free][:, self.free].tocsr()
                a_fp = matrix[self.free][:, self.pillar_flat].tocsr()
                a_p = (
                    matrix[self.pillar_flat, :].tocsr() if pillar_rows else None
                )
                if factorize:
                    cache[group] = (DirectSolver(a_ff), a_fp, a_p, None)
                else:
                    cache[group] = (a_ff, a_fp, a_p, 1.0 / a_ff.diagonal())
            a_ff, a_fp, a_p, inv_diag = cache[group]
            self.a_ff.append(a_ff)
            self.a_fp.append(a_fp)
            if a_p is not None:
                self.a_pillar.append(a_p)
            if inv_diag is not None:
                self.jacobi_inv.append(inv_diag)
            self.b_free.append(rhs[self.free])
            if pillar_rows:
                self.b_pillar.append(rhs[self.pillar_flat])

    # ------------------------------------------------------------------
    @property
    def n_free(self) -> int:
        return self.free.size

    @property
    def n_pillars(self) -> int:
        return self.pillar_flat.size

    def reduced_rhs(
        self,
        tier_index: int,
        pillar_v: np.ndarray,
        b_free: np.ndarray | None = None,
    ) -> np.ndarray:
        """``b_f - A_fp v_p`` for one tier; ``pillar_v`` is ``(P,)`` or
        ``(P, S)`` and an explicit per-scenario ``b_free`` ``(n_free, S)``
        overrides the tier's base RHS."""
        base = self.b_free[tier_index] if b_free is None else b_free
        coupling = self.a_fp[tier_index] @ pillar_v
        if coupling.ndim == 2:
            # Subtract straight into a Fortran-ordered buffer: SuperLU
            # consumes multi-column RHS column-contiguous, so building it
            # in that layout here saves a full copy in solve_free.
            out = np.empty(coupling.shape, order="F")
            np.subtract(_match_columns(base, coupling), coupling, out=out)
            return out
        return base - coupling

    def solve_free(
        self,
        tier_index: int,
        pillar_v: np.ndarray,
        b_free: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve one tier's reduced system for the free-node voltages.

        Single- and multi-column ``pillar_v`` run through the same cached
        factorization; the multi-column case back-substitutes all
        scenarios in one call.
        """
        if not self.factorized:
            raise RuntimeError(
                "solve_free needs factorize=True (use reduced_rhs with an "
                "iterative solver otherwise)"
            )
        rhs = self.reduced_rhs(tier_index, pillar_v, b_free)
        if rhs.ndim == 2 and not rhs.flags.f_contiguous:
            rhs = np.asfortranarray(rhs)
        return self.a_ff[tier_index].solve(rhs)

    def assemble(
        self, x_free: np.ndarray, pillar_v: np.ndarray
    ) -> np.ndarray:
        """Scatter free-node and pillar values into a full flat field
        (``(n,)`` or ``(n, S)``, matching the inputs)."""
        if x_free.ndim == 2:
            field = np.empty((self.n, x_free.shape[1]))
        else:
            field = np.empty(self.n)
        field[self.free] = x_free
        field[self.pillar_flat] = pillar_v
        return field

    def drawn_currents(
        self,
        tier_index: int,
        v_full: np.ndarray,
        b_pillar: np.ndarray | None = None,
    ) -> np.ndarray:
        """Current each pillar delivers into this plane: the KCL residual
        ``A_p v - b_p`` at the pillar rows (``(P,)`` or ``(P, S)``)."""
        if not self.has_pillar_rows:
            raise RuntimeError("drawn_currents needs pillar_rows=True")
        base = self.b_pillar[tier_index] if b_pillar is None else b_pillar
        product = self.a_pillar[tier_index] @ v_full
        return product - _match_columns(base, product)

    def update_rhs(self, tier_index: int, rhs_full: np.ndarray) -> None:
        """Refresh one tier's base RHS after a load change (matrices and
        factors survive)."""
        self.planes[tier_index] = (self.planes[tier_index][0], rhs_full)
        self.b_free[tier_index] = rhs_full[self.free]
        if self.has_pillar_rows:
            self.b_pillar[tier_index] = rhs_full[self.pillar_flat]

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Bytes held by the partitioned blocks (shared objects counted
        once)."""
        total = 0
        seen: set[int] = set()

        def once(obj, n_bytes: int) -> int:
            if id(obj) in seen:
                return 0
            seen.add(id(obj))
            return n_bytes

        def csr_bytes(matrix) -> int:
            return once(
                matrix,
                matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes,
            )

        for l in range(len(self.planes)):
            total += csr_bytes(self.a_fp[l]) + self.b_free[l].nbytes
            if self.has_pillar_rows:
                total += csr_bytes(self.a_pillar[l]) + self.b_pillar[l].nbytes
            block = self.a_ff[l]
            if self.factorized:
                total += once(block, block.memory_bytes)
            else:
                total += csr_bytes(block)
        for inv in self.jacobi_inv:
            total += once(inv, inv.nbytes)
        return int(total)
