"""Row-based (RB) iterative solver for one power-grid plane (§II-B).

The row-based method of Zhong & Wong treats each lattice row as one block:
given the voltages of the two neighbouring rows, the row's nodes satisfy a
tridiagonal system solved exactly in linear time (the Thomas algorithm's
``5N-4`` multiplications / ``3(N-1)`` additions the paper quotes), making
the whole scheme a block Gauss-Seidel relaxation that converges for the
SPD conductance systems of power grids, with SOR acceleration available.

This implementation adds two engineering layers on the textbook method:

* **Dirichlet (fixed-voltage) nodes.**  The VP method holds TSV nodes at
  propagated voltages during the intra-plane phase; such nodes become
  identity rows with their couplings folded into the right-hand side.
* **Cached, batched factorizations.**  Each distinct row matrix is
  Cholesky-factored once (banded) and shared by every row with identical
  coefficients -- on the paper's uniform benchmark tiers there are only a
  handful of distinct row matrices.  The red-black ordering updates all
  even rows, then all odd rows; rows of one colour are independent, so
  each colour is a single multi-RHS banded solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import GridError, ReproError
from repro.grid.grid2d import Grid2D
from repro.linalg.tridiagonal import TridiagonalCholesky, thomas_operation_count

ORDERINGS = ("forward", "backward", "symmetric", "redblack")


@dataclass
class RowBasedConfig:
    """Tuning knobs for the row-based solver.

    ``tol`` bounds the per-sweep maximum voltage change (volts) -- the
    same "max error" style criterion the paper's 0.5 mV budget uses.
    ``omega = 1`` is plain block Gauss-Seidel; values in (1, 2) give SOR.
    """

    tol: float = 1e-8
    max_sweeps: int = 20_000
    omega: float = 1.0
    ordering: str = "redblack"
    record_history: bool = False

    def __post_init__(self) -> None:
        if self.ordering not in ORDERINGS:
            raise ReproError(
                f"unknown ordering {self.ordering!r}; use one of {ORDERINGS}"
            )
        if not 0 < self.omega < 2:
            raise ReproError(f"omega must be in (0, 2), got {self.omega}")
        if self.tol <= 0:
            raise ReproError("tol must be positive")


@dataclass
class RowBasedResult:
    """Solution of one intra-plane solve."""

    v: np.ndarray
    converged: bool
    sweeps: int
    max_dx: float
    history: list[float] = field(default_factory=list)


class RowBasedSolver:
    """Block (line) Gauss-Seidel / SOR over the rows of one
    :class:`~repro.grid.grid2d.Grid2D`, with optional Dirichlet nodes.

    The solver is reusable: structure-dependent work (row matrices and
    their factorizations) happens once in the constructor; each
    :meth:`solve` call only supplies Dirichlet values / warm starts.
    """

    def __init__(
        self,
        grid: Grid2D,
        dirichlet_mask: np.ndarray | None = None,
        config: RowBasedConfig | None = None,
    ):
        self.grid = grid
        self.config = config or RowBasedConfig()
        rows, cols = grid.rows, grid.cols
        if dirichlet_mask is None:
            dirichlet_mask = np.zeros((rows, cols), dtype=bool)
        self.dirichlet_mask = np.asarray(dirichlet_mask, dtype=bool)
        if self.dirichlet_mask.shape != (rows, cols):
            raise GridError(
                f"dirichlet mask shape {self.dirichlet_mask.shape} "
                f"does not match grid {rows}x{cols}"
            )
        if not self.dirichlet_mask.any() and not np.any(grid.g_pad > 0):
            raise GridError(
                "plane solve is singular: no Dirichlet nodes and no pads"
            )
        self._setup_structure()

    # ------------------------------------------------------------------
    # Structure setup
    # ------------------------------------------------------------------
    def _setup_structure(self) -> None:
        grid, mask = self.grid, self.dirichlet_mask
        rows, cols = grid.rows, grid.cols

        # Vertical couplings per node, zeroed at Dirichlet nodes (their
        # equations are identities) but kept for free nodes next to them
        # (the pinned field values feed through naturally).
        gv_up = np.zeros((rows, cols))
        gv_down = np.zeros((rows, cols))
        if rows > 1:
            gv_up[1:, :] = grid.g_v
            gv_down[:-1, :] = grid.g_v
        gv_up[mask] = 0.0
        gv_down[mask] = 0.0
        self._gv_up = gv_up
        self._gv_down = gv_down

        # Constant RHS part: pad injection minus loads; identity at mask.
        base = grid.g_pad * grid.v_pad - grid.loads
        base[mask] = 0.0
        self._base_rhs = base

        # Row matrices: diagonal = total incident conductance, in-row
        # off-diagonals = -g_h; Dirichlet rows become identities and the
        # couplings of their free neighbours move to the RHS via the
        # fold coefficients.
        diag = grid.degree_conductance()
        diag[mask] = 1.0
        off = -grid.g_h.copy() if cols > 1 else np.zeros((rows, 0))
        if cols > 1:
            either_masked = mask[:, :-1] | mask[:, 1:]
            off[either_masked] = 0.0
        coeff_left = np.zeros((rows, cols))
        coeff_right = np.zeros((rows, cols))
        if cols > 1:
            coeff_left[:, 1:] = np.where(mask[:, :-1], grid.g_h, 0.0)
            coeff_right[:, :-1] = np.where(mask[:, 1:], grid.g_h, 0.0)
        coeff_left[mask] = 0.0
        coeff_right[mask] = 0.0
        self._coeff_left = coeff_left
        self._coeff_right = coeff_right
        self._diag = diag
        self._off = off

        # Factor each distinct row matrix once; map rows to factors.
        signature_to_factor: dict[bytes, TridiagonalCholesky] = {}
        self._row_factor: list[TridiagonalCholesky] = []
        row_signatures = []
        for i in range(rows):
            signature = diag[i].tobytes() + b"|" + off[i].tobytes()
            row_signatures.append(signature)
            factor = signature_to_factor.get(signature)
            if factor is None:
                factor = TridiagonalCholesky(diag[i], off[i])
                signature_to_factor[signature] = factor
            self._row_factor.append(factor)
        self.n_distinct_row_matrices = len(signature_to_factor)

        # Red-black batches: per colour, group row indices by signature so
        # each group is one multi-RHS banded solve.
        self._color_batches: list[list[tuple[TridiagonalCholesky, np.ndarray]]] = []
        for parity in (0, 1):
            groups: dict[bytes, list[int]] = {}
            for i in range(parity, rows, 2):
                groups.setdefault(row_signatures[i], []).append(i)
            self._color_batches.append(
                [
                    (signature_to_factor[sig], np.asarray(idx, dtype=np.int64))
                    for sig, idx in groups.items()
                ]
            )

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Bytes of cached structure (factors + coefficient fields)."""
        factors = {id(f): f for f in self._row_factor}
        total = sum(f.memory_bytes for f in factors.values())
        for arr in (
            self._gv_up,
            self._gv_down,
            self._base_rhs,
            self._coeff_left,
            self._coeff_right,
            self._diag,
            self._off,
        ):
            total += arr.nbytes
        return int(total)

    def operations_per_sweep(self) -> tuple[int, int]:
        """(multiplications, additions) of one sweep's tridiagonal solves,
        per the paper's CVN cost model."""
        mults, adds = 0, 0
        for _ in range(self.grid.rows):
            m, a = thomas_operation_count(self.grid.cols)
            mults += m
            adds += a
        return mults, adds

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        dirichlet_values: np.ndarray | None = None,
        v0: np.ndarray | None = None,
        *,
        tol: float | None = None,
        max_sweeps: int | None = None,
        omega: float | None = None,
        base_rhs: np.ndarray | None = None,
    ) -> RowBasedResult:
        """Relax to tolerance.

        Parameters
        ----------
        dirichlet_values:
            ``(rows, cols)`` field read at the Dirichlet positions
            (required when the solver was built with a mask).
        v0:
            Warm-start field; defaults to the Dirichlet mean (the paper
            initializes to VDD, which is what the VP solver passes).
        base_rhs:
            Override of the constant RHS (``g_pad*v_pad - loads``, zeroed
            at Dirichlet nodes).  Lets one solver structure serve several
            tiers that share wire geometry but differ in loads -- the
            paper's replicated-tier benchmarks, or per-tier activity
            factors.
        """
        config = self.config
        tol = config.tol if tol is None else tol
        max_sweeps = config.max_sweeps if max_sweeps is None else max_sweeps
        omega = config.omega if omega is None else omega
        grid, mask = self.grid, self.dirichlet_mask
        rows, cols = grid.rows, grid.cols

        if mask.any():
            if dirichlet_values is None:
                raise GridError("dirichlet_values required (mask is non-empty)")
            dvals = np.asarray(dirichlet_values, dtype=float)
            if dvals.shape != (rows, cols):
                raise GridError(
                    f"dirichlet_values shape {dvals.shape} != {(rows, cols)}"
                )
        else:
            dvals = np.zeros((rows, cols))

        if v0 is None:
            fill = float(dvals[mask].mean()) if mask.any() else grid.v_pad
            v = np.full((rows, cols), fill)
        else:
            v = np.array(v0, dtype=float)
            if v.shape != (rows, cols):
                raise GridError(f"v0 shape {v.shape} != {(rows, cols)}")
        v[mask] = dvals[mask]

        # Fold in-row couplings to Dirichlet neighbours (fixed per solve).
        if base_rhs is None:
            rhs_const = self._base_rhs.copy()
        else:
            rhs_const = np.array(base_rhs, dtype=float)
            if rhs_const.shape != (rows, cols):
                raise GridError(
                    f"base_rhs shape {rhs_const.shape} != {(rows, cols)}"
                )
        if cols > 1:
            rhs_const[:, 1:] += self._coeff_left[:, 1:] * dvals[:, :-1]
            rhs_const[:, :-1] += self._coeff_right[:, :-1] * dvals[:, 1:]
        rhs_const[mask] = dvals[mask]
        if not np.all(np.isfinite(rhs_const)):
            raise GridError(
                "non-finite values in loads/Dirichlet data; "
                "validate the grid before solving"
            )

        history: list[float] = []
        converged = False
        sweeps = 0
        max_dx = np.inf
        prev_dx: float | None = None
        # Hoisted once: None unless a telemetry session enabled series
        # capture, so the per-sweep cost stays a None check.
        series = obs.active_series("rb.max_dx")
        for sweeps in range(1, max_sweeps + 1):
            if config.ordering == "redblack":
                max_dx = self._sweep_redblack(v, rhs_const, omega)
            elif config.ordering == "forward":
                max_dx = self._sweep_sequential(v, rhs_const, omega, range(rows))
            elif config.ordering == "backward":
                max_dx = self._sweep_sequential(
                    v, rhs_const, omega, range(rows - 1, -1, -1)
                )
            else:  # symmetric
                dx1 = self._sweep_sequential(v, rhs_const, omega, range(rows))
                dx2 = self._sweep_sequential(
                    v, rhs_const, omega, range(rows - 1, -1, -1)
                )
                max_dx = max(dx1, dx2)
            if config.record_history:
                history.append(max_dx)
            if series is not None:
                series.append(sweeps, max_dx)
            # Contraction-aware stop: for a stationary iteration with
            # per-sweep contraction theta, the remaining error is bounded
            # by ~ dx * theta / (1 - theta), so a small per-sweep change
            # alone does not prove convergence (slow modes can hide a much
            # larger error behind a tiny dx -- e.g. low-current planes
            # warm-started at a flat field).  Accept once the bound, with
            # theta measured from consecutive sweeps, is below tol; a
            # non-contracting sweep (theta >= 1) is accepted only at the
            # roundoff plateau, where dx is negligible against tol and
            # even a pessimistic contraction of 0.999 bounds the error.
            if max_dx <= tol:
                if max_dx <= tol * 1e-3:
                    converged = True
                    break
                if prev_dx is not None and prev_dx > 0.0:
                    theta = max_dx / prev_dx
                    if theta < 1.0 and max_dx * theta / (1.0 - theta) <= tol:
                        converged = True
                        break
            if not np.isfinite(max_dx):
                break
            prev_dx = max_dx
        return RowBasedResult(
            v=v, converged=converged, sweeps=sweeps, max_dx=float(max_dx),
            history=history,
        )

    # ------------------------------------------------------------------
    def _row_rhs(
        self, v: np.ndarray, rhs_const: np.ndarray, idx: np.ndarray
    ) -> np.ndarray:
        """RHS of rows ``idx`` given the current field (vectorized)."""
        rows = self.grid.rows
        up = np.where((idx > 0)[:, None], v[np.maximum(idx - 1, 0)], 0.0)
        down = np.where(
            (idx < rows - 1)[:, None], v[np.minimum(idx + 1, rows - 1)], 0.0
        )
        return rhs_const[idx] + self._gv_up[idx] * up + self._gv_down[idx] * down

    def _sweep_redblack(
        self, v: np.ndarray, rhs_const: np.ndarray, omega: float
    ) -> float:
        max_dx = 0.0
        for batches in self._color_batches:
            for factor, idx in batches:
                rhs = self._row_rhs(v, rhs_const, idx)
                x = factor.solve(rhs.T).T
                if omega != 1.0:
                    x = v[idx] + omega * (x - v[idx])
                delta = np.abs(x - v[idx]).max() if x.size else 0.0
                max_dx = max(max_dx, float(delta))
                v[idx] = x
        return max_dx

    def _sweep_sequential(
        self, v: np.ndarray, rhs_const: np.ndarray, omega: float, order
    ) -> float:
        max_dx = 0.0
        for i in order:
            idx = np.array([i], dtype=np.int64)
            rhs = self._row_rhs(v, rhs_const, idx)[0]
            x = self._row_factor[i].solve(rhs)
            if omega != 1.0:
                x = v[i] + omega * (x - v[i])
            delta = np.abs(x - v[i]).max() if x.size else 0.0
            max_dx = max(max_dx, float(delta))
            v[i] = x
        return max_dx

    def _jacobi_line_sweep(self, v: np.ndarray) -> np.ndarray:
        """One block-Jacobi sweep with zero RHS (error-propagation
        operator), used only for spectral-radius estimation."""
        zero_rhs = np.zeros_like(v)
        out = np.empty_like(v)
        idx_all = np.arange(self.grid.rows, dtype=np.int64)
        rhs = self._row_rhs(v, zero_rhs, idx_all)
        for factor, idx in (
            batch for color in self._color_batches for batch in color
        ):
            out[idx] = factor.solve(rhs[idx].T).T
        out[self.dirichlet_mask] = 0.0
        return out


def estimate_optimal_omega(
    solver: RowBasedSolver,
    n_iter: int = 40,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float]:
    """Estimate the SOR-optimal relaxation factor for a plane.

    Runs power iteration on the solver's block-Jacobi error operator to
    estimate its spectral radius ``rho_J``, then applies Young's formula
    ``omega* = 2 / (1 + sqrt(1 - rho_J^2))`` (valid for the consistently
    ordered block systems of regular grids; the paper's §II-B cites the
    resulting O(N^2) -> O(N) iteration-count drop).

    Returns ``(omega, rho_J)``.
    """
    gen = np.random.default_rng(rng)
    v = gen.standard_normal((solver.grid.rows, solver.grid.cols))
    v[solver.dirichlet_mask] = 0.0
    norm = np.linalg.norm(v)
    if norm == 0:
        return 1.0, 0.0
    v /= norm
    rho = 0.0
    for _ in range(n_iter):
        v = solver._jacobi_line_sweep(v)
        norm = float(np.linalg.norm(v))
        if norm == 0 or not np.isfinite(norm):
            break
        rho = norm
        v /= norm
    rho = min(rho, 1.0 - 1e-12)
    omega = 2.0 / (1.0 + np.sqrt(1.0 - rho * rho))
    return float(min(omega, 1.95)), float(rho)
