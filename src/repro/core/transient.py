"""Transient (RC) extension of the Voltage Propagation method.

The paper analyzes the static (DC) IR drop; real sign-off also needs the
transient droop when load currents switch.  With node-to-ground
decoupling/parasitic capacitance ``C`` the network obeys

    C dv/dt + G v = b(t)

and a backward-Euler step of size ``h`` turns each time point into a DC
problem with extra diagonal conductance::

    (G + C/h) v_k = b(t_k) + (C/h) v_{k-1}

That companion system has *more* diagonal mass than the DC one, so every
property VP relies on still holds -- the per-tier plane matrices simply
gain ``C/h`` on the diagonal and the RHS gains the history term.  The
solver below builds the companion structure once per step size and then
advances with warm-started VP solves; with the cached-direct inner solver
a step costs three triangular back-substitutions plus the outer loop.

Capacitors are node-to-ground (the standard decap/parasitic model); TSVs
stay purely resistive pillars as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import time

import numpy as np

from repro import obs
from repro.errors import GridError, ReproError
from repro.core.vp import VPConfig, VPResult, VoltagePropagationSolver
from repro.grid.stack3d import PowerGridStack

#: Type of a load stimulus: maps time (s) to per-tier load arrays (A).
LoadStimulus = Callable[[float], list[np.ndarray]]


def normalize_capacitance(
    stack: PowerGridStack, capacitance: float | Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Validate and normalize node capacitance to per-tier arrays.

    Parameters
    ----------
    stack:
        The grid whose tier shapes and TSV keep-out mask apply.
    capacitance:
        Per-tier ``(rows, cols)`` arrays in farads, or a scalar applied
        to every non-TSV node.

    Returns
    -------
    list of numpy.ndarray
        One ``(rows, cols)`` array per tier, zeroed at pillar nodes: the
        TSV keep-out applies to decap too, because the history current
        of a pillar-node capacitor would violate the plane solvers'
        zero-load assumption at Dirichlet nodes.

    Raises
    ------
    ReproError
        If a scalar capacitance is not positive.
    GridError
        On a tier-count/shape mismatch or negative entries.
    """
    mask = stack.pillar_mask()
    if np.isscalar(capacitance):
        value = float(capacitance)  # type: ignore[arg-type]
        if value <= 0:
            raise ReproError("capacitance must be positive")
        caps = []
        for _ in stack.tiers:
            field_ = np.full((stack.rows, stack.cols), value)
            field_[mask] = 0.0
            caps.append(field_)
        return caps
    caps = [np.asarray(c, dtype=float).copy() for c in capacitance]
    if len(caps) != stack.n_tiers:
        raise GridError(
            f"expected {stack.n_tiers} capacitance arrays, got {len(caps)}"
        )
    for c in caps:
        if c.shape != (stack.rows, stack.cols):
            raise GridError(
                f"capacitance shape {c.shape} != "
                f"{(stack.rows, stack.cols)}"
            )
        if np.any(c < 0):
            raise GridError("capacitance must be non-negative")
        c[mask] = 0.0
    return caps


def step_stimulus(
    base_loads: Sequence[np.ndarray],
    *,
    t_step: float,
    before: float = 0.2,
    after: float = 1.0,
) -> LoadStimulus:
    """Loads scaled by ``before`` until ``t_step``, ``after`` afterwards --
    the classic worst-case di/dt event (clock gating released)."""

    def at(t: float) -> list[np.ndarray]:
        scale = before if t < t_step else after
        return [loads * scale for loads in base_loads]

    return at


def pulse_train_stimulus(
    base_loads: Sequence[np.ndarray],
    *,
    period: float,
    duty: float = 0.5,
    low: float = 0.2,
    high: float = 1.0,
) -> LoadStimulus:
    """Periodic activity bursts (duty-cycled switching)."""
    if not 0 < duty < 1:
        raise ReproError("duty cycle must be in (0, 1)")

    def at(t: float) -> list[np.ndarray]:
        phase = (t % period) / period
        scale = high if phase < duty else low
        return [loads * scale for loads in base_loads]

    return at


@dataclass
class TransientResult:
    """Waveforms of a transient run.

    ``worst_voltage[k]`` is the minimum node voltage at time ``times[k]``
    (maximum droop for a VDD net); ``probe_voltages`` holds the full
    trajectory of the requested probe nodes; ``voltages`` the final field.
    """

    times: np.ndarray
    worst_voltage: np.ndarray
    probe_voltages: np.ndarray
    probes: list[tuple[int, int, int]]
    voltages: np.ndarray
    outer_iterations: list[int] = field(default_factory=list)

    @property
    def worst_droop(self) -> float:
        """Worst instantaneous droop below the initial worst voltage."""
        return float(self.worst_voltage[0] - self.worst_voltage.min())


class TransientVPSolver:
    """Backward-Euler transient analysis driven by VP steps.

    Parameters
    ----------
    stack:
        The power grid.  Loads stored in the stack provide the t=0
        operating point unless a stimulus is given.
    capacitance:
        Per-tier node capacitance arrays ``(rows, cols)`` in farads, or a
        scalar applied to every non-TSV node (TSV nodes follow the
        keep-out rule and carry no decap in this model).
    dt:
        Backward-Euler step (s).
    config:
        VP configuration for the per-step solves.
    """

    def __init__(
        self,
        stack: PowerGridStack,
        capacitance: float | Sequence[np.ndarray],
        dt: float,
        config: VPConfig | None = None,
    ):
        if dt <= 0:
            raise ReproError("dt must be positive")
        self.stack = stack
        self.dt = float(dt)
        self._caps = self._normalize_caps(capacitance)

        # Companion stack: same wiring, extra diagonal conductance C/h
        # expressed as a pad to a 0 V rail... but the companion term must
        # inject (C/h) v_prev, not (C/h)*v_pad, so we keep v_pad = 0 and
        # fold the history into per-step load overrides instead:
        #     (G + C/h) v = b_dc + (C/h) v_prev
        # <=> companion loads = loads_dc - (C/h) v_prev.
        self._companion = stack.copy()
        g_cap = [caps / self.dt for caps in self._caps]
        for tier, extra in zip(self._companion.tiers, g_cap):
            tier.g_pad = tier.g_pad + extra
            # v_pad stays as-is (0 for stacks); history enters via loads.
        self._g_cap = g_cap
        self._solver = VoltagePropagationSolver(
            self._companion, config or VPConfig()
        )
        self._dc_solver = VoltagePropagationSolver(stack, config or VPConfig())

    # ------------------------------------------------------------------
    def _normalize_caps(
        self, capacitance: float | Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        return normalize_capacitance(self.stack, capacitance)

    # ------------------------------------------------------------------
    def dc_operating_point(
        self, loads: list[np.ndarray] | None = None
    ) -> VPResult:
        """Initial condition: the DC solution of the (resistive) grid."""
        if loads is not None:
            self._dc_solver.update_loads(loads)
        return self._dc_solver.solve()

    def run(
        self,
        t_end: float,
        stimulus: LoadStimulus | None = None,
        *,
        probes: Sequence[tuple[int, int, int]] = (),
        v0: np.ndarray | None = None,
    ) -> TransientResult:
        """Advance from 0 to ``t_end`` in backward-Euler steps.

        ``stimulus(t)`` supplies per-tier loads at each step (defaults to
        the stack's static loads); ``probes`` are (tier, row, col) nodes
        whose waveforms are recorded; ``v0`` overrides the initial field
        (defaults to the DC operating point of the t=0 loads).
        """
        stack = self.stack
        base_loads = [tier.loads.copy() for tier in stack.tiers]
        stimulus = stimulus or (lambda t: base_loads)

        pillar_seed = None
        if v0 is None:
            dc = self.dc_operating_point(stimulus(0.0))
            v = dc.voltages.copy()
            # Seed the first companion solve from the DC pillar voltages
            # (later steps warm-start from the previous step anyway);
            # the batched engine mirrors this seed for exact parity.
            pillar_seed = dc.pillar_v0
        else:
            v = np.array(v0, dtype=float)
            expected = (stack.n_tiers, stack.rows, stack.cols)
            if v.shape != expected:
                raise GridError(f"v0 shape {v.shape} != {expected}")

        n_steps = int(np.ceil(t_end / self.dt))
        times = np.empty(n_steps + 1)
        worst = np.empty(n_steps + 1)
        probes = list(probes)
        probe_wave = np.empty((n_steps + 1, len(probes)))
        times[0] = 0.0
        worst[0] = float(v.min())
        for p, (l, i, j) in enumerate(probes):
            probe_wave[0, p] = v[l, i, j]

        tr = obs.tracer()
        reg = obs.metrics()
        outer_counts: list[int] = []
        for k in range(1, n_steps + 1):
            t = k * self.dt
            t0 = time.perf_counter()
            loads_t = stimulus(t)
            companion_loads = [
                loads - g_cap * v[l]
                for l, (loads, g_cap) in enumerate(zip(loads_t, self._g_cap))
            ]
            self._solver.update_loads(companion_loads)
            result = self._solver.solve(v0=pillar_seed)
            reg.add("transient.steps")
            if tr.enabled:
                tr.add_complete(
                    "step.solve", t0, time.perf_counter() - t0, step=k
                )
            if not result.converged:
                raise ReproError(
                    f"transient VP step at t={t:.3e}s did not converge"
                )
            v = result.voltages.copy()
            pillar_seed = result.pillar_v0
            outer_counts.append(result.outer_iterations)
            times[k] = t
            worst[k] = float(v.min())
            for p, (l, i, j) in enumerate(probes):
                probe_wave[k, p] = v[l, i, j]

        return TransientResult(
            times=times,
            worst_voltage=worst,
            probe_voltages=probe_wave,
            probes=probes,
            voltages=v,
            outer_iterations=outer_counts,
        )
