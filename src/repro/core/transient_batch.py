"""Batched multi-scenario transient engine -- shared companion factors.

A transient droop sweep (load-step corners, decap placements, ramp
shapes) re-runs the backward-Euler recursion

    (G + C/h) v_k = b(t_k) + (C/h) v_{k-1}

once per scenario.  The sequential loop
(:class:`repro.core.transient.TransientVPSolver` per scenario) pays a
fresh companion factorization *and* a fresh outer-iteration history for
every scenario, although most knobs never touch the companion matrix:

* ``load_scale`` and stimulus activity only move the right-hand side;
* ``r_tsv_scale`` / ``r_seg_scale`` act purely in the propagation phase;
* only ``plane_scale`` (``G -> alpha G``) and ``cap_scale`` (``C ->
  kappa C``) change the companion matrix ``alpha G + kappa C / h`` --
  and the DC scaled-factor fast path does **not** apply here, because
  ``alpha G + C/h`` is not a scaling of ``G + C/h``.

So this engine groups scenarios by their ``(plane_scale, cap_scale)``
tuples, builds one DC stack and one companion stack per group, fetches
their factors through a :class:`~repro.core.planes.PlaneFactorCache`
(groups that differ only in decap share the DC factors), and advances
*all* scenarios of a group through one
:class:`~repro.core.batch.BatchedVPSolver` per time step: the per-step
history term folds into the RHS batch via
:meth:`~repro.core.batch.BatchedVPSolver.set_rhs`, and every step is a
multi-column CVN back-substitution with per-scenario convergence masks.
The factorization count is therefore *independent of the scenario count
and the step count* -- the property the benchmark counter-asserts.

Exact parity: scenario column ``s`` follows exactly the solve sequence
a sequential ``TransientVPSolver(scenario.apply(stack), caps *
cap_scale, dt, VPConfig(inner="direct", ...)).run(...)`` takes -- same
DC seed, same per-step warm starts, same RHS floating-point op order --
so per-scenario waveforms agree to round-off (the benchmark asserts
worst-droop parity at rtol 1e-10).

Scenarios whose stimulus has settled (steps and ramps past the event;
pulses never settle) can optionally *retire early*: once a scenario's
step-to-step voltage change stays under ``settle_tol`` for
``settle_window`` consecutive steps, its waveform tail is frozen and
later steps back-substitute only the survivors' columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.batch import BatchedVPConfig, BatchedVPSolver
from repro.core.planes import PlaneFactorCache
from repro.core.transient import normalize_capacitance
from repro.core.vda import VDAPolicy
from repro.core.vp import loadshare_v0
from repro.errors import GridError, ReproError
from repro.grid.stack3d import PowerGridStack
from repro.scenarios.spec import Scenario, ScenarioSet


@dataclass
class BatchedTransientConfig:
    """Tuning knobs of the batched transient engine.

    ``outer_tol``/``max_outer``/``vda``/``eta``/``v0_init`` configure the
    per-step batched VP solves exactly like
    :class:`~repro.core.batch.BatchedVPConfig`.  ``settle_tol`` enables
    early retirement of settled scenarios: 0 (default) disables it,
    preserving exact parity with the sequential path; a positive value
    (volts) retires a scenario once its stimulus has settled and its
    step-to-step voltage change stays under the threshold for
    ``settle_window`` consecutive steps (its waveform tail is frozen at
    the retirement value).
    """

    outer_tol: float = 1e-4
    max_outer: int = 200
    vda: str | VDAPolicy = "auto"
    eta: float | None = None
    v0_init: str = "pin"
    settle_tol: float = 0.0
    settle_window: int = 2

    def __post_init__(self) -> None:
        if self.settle_tol < 0:
            raise ReproError("settle_tol must be >= 0")
        if self.settle_window < 1:
            raise ReproError("settle_window must be >= 1")

    def vp_config(self) -> BatchedVPConfig:
        """The per-step batched VP configuration."""
        return BatchedVPConfig(
            outer_tol=self.outer_tol,
            max_outer=self.max_outer,
            vda=self.vda,
            eta=self.eta,
            record_history=False,
            raise_on_divergence=False,
            v0_init=self.v0_init,
        )


@dataclass
class BatchedTransientStats:
    """Cost accounting of one batched transient run."""

    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    n_steps: int = 0
    #: Distinct ``(plane_scale, cap_scale)`` companion groups.
    n_groups: int = 0
    #: LU factorizations performed through the factor cache during
    #: engine construction -- per *group geometry*, never per scenario
    #: or per step (the benchmark's counter-assert).
    factorizations: int = 0
    #: Sum over time steps of the scenario columns actually solved;
    #: early settle-retirement makes this < n_steps * n_scenarios.
    column_steps: int = 0


@dataclass
class BatchedTransientResult:
    """Waveforms of a batched transient run (scenario axis last).

    ``worst_voltage[k, s]`` is scenario ``s``'s minimum node voltage at
    ``times[k]``; ``probe_voltages[k, p, s]`` the probe trajectories;
    ``voltages[..., s]`` the final field; ``outer_iterations[k-1, s]``
    the VP outer iterations of step ``k``.  ``settled_step[s]`` is the
    step index at which scenario ``s`` was retired as settled (-1 when
    it ran to the end).
    """

    times: np.ndarray                 # (K+1,)
    worst_voltage: np.ndarray         # (K+1, S)
    probe_voltages: np.ndarray        # (K+1, n_probes, S)
    probes: list[tuple[int, int, int]]
    voltages: np.ndarray              # (T, R, C, S)
    outer_iterations: np.ndarray      # (K, S)
    settled_step: np.ndarray          # (S,)
    scenario_names: list[str]
    stats: BatchedTransientStats = field(default_factory=BatchedTransientStats)

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_names)

    @property
    def worst_droop(self) -> np.ndarray:
        """``(S,)`` worst instantaneous droop below each scenario's
        initial worst voltage (matches
        :attr:`repro.core.transient.TransientResult.worst_droop`
        per column)."""
        return self.worst_voltage[0] - self.worst_voltage.min(axis=0)

    def scenario_index(self, name: str) -> int:
        try:
            return self.scenario_names.index(name)
        except ValueError:
            raise ReproError(f"no scenario named {name!r}") from None

    def scenario_waveform(self, name_or_index) -> np.ndarray:
        """One scenario's ``(K+1,)`` worst-voltage waveform."""
        index = (
            name_or_index
            if isinstance(name_or_index, (int, np.integer))
            else self.scenario_index(name_or_index)
        )
        return self.worst_voltage[:, index]


class _ScenarioGroup:
    """All scenarios sharing one ``(plane_scale, cap_scale)`` signature:
    one DC stack, one companion stack, one pair of batched solvers."""

    def __init__(
        self,
        stack: PowerGridStack,
        originals: list[Scenario],
        columns: list[int],
        base_caps: list[np.ndarray],
        dt: float,
        cache: PlaneFactorCache,
        vp_config: BatchedVPConfig,
    ):
        self.originals = originals
        self.columns = np.array(columns, dtype=int)
        n_tiers = stack.n_tiers
        alphas = originals[0].tier_plane_scales(n_tiers)
        cap_scales = originals[0].tier_cap_scales(n_tiers)

        # DC stack: plane_scale baked into the matrices (the scaled-
        # factor fast path is unusable for the companion system, so the
        # transient engine always bakes alpha in -- mirroring the op
        # order of Scenario.apply keeps parity bitwise).
        dc_stack = stack.copy()
        for tier, alpha in zip(dc_stack.tiers, alphas):
            if alpha != 1.0:
                tier.g_h = tier.g_h * alpha
                tier.g_v = tier.g_v * alpha
                tier.g_pad = tier.g_pad * alpha

        # Companion stack: extra diagonal conductance C/h as a pad to a
        # 0 V rail; the history term enters through per-step loads (same
        # construction as TransientVPSolver).
        caps = [c * k for c, k in zip(base_caps, cap_scales)]
        self.g_cap = [(c / dt).ravel() for c in caps]
        comp_stack = dc_stack.copy()
        for tier, c in zip(comp_stack.tiers, caps):
            tier.g_pad = tier.g_pad + c / dt

        # Scenario knobs that survive the baking: load scales feed the
        # per-step RHS directly, TSV knobs feed the propagation phase.
        stripped = ScenarioSet(
            [
                Scenario(
                    name=s.name,
                    r_tsv_scale=s.r_tsv_scale,
                    r_seg_scale=s.r_seg_scale,
                )
                for s in originals
            ]
        )
        dc_planes = cache.get(dc_stack, pin=True)
        comp_planes = cache.get(comp_stack, pin=True)
        self.dc_solver = BatchedVPSolver(
            dc_stack, stripped, vp_config, planes=dc_planes
        )
        self.comp_solver = BatchedVPSolver(
            comp_stack, stripped, vp_config, planes=comp_planes
        )
        self._comp_stack = comp_stack
        self._stripped = stripped
        self._vp_config = vp_config
        self._comp_planes = comp_planes

        # (n, S) per tier: loads pre-scaled by each scenario's per-tier
        # load corner; the stimulus activity multiplies per step.  The
        # op order (base * load_scale) * activity matches the sequential
        # path (Scenario.apply then stimulus) bitwise.
        load_scales = np.column_stack(
            [s.tier_scales(n_tiers) for s in originals]
        )
        self.base_scaled = [
            tier.loads.ravel()[:, None] * load_scales[l][None, :]
            for l, tier in enumerate(dc_stack.tiers)
        ]
        self.pad_dc = [
            tier.g_pad.ravel() * tier.v_pad for tier in dc_stack.tiers
        ]
        self.pad_comp = [
            tier.g_pad.ravel() * tier.v_pad for tier in comp_stack.tiers
        ]

        # Run state (narrowed on settle retirement).
        self.active = np.arange(len(originals))
        self.v: np.ndarray | None = None          # (T, n, S_active)
        self.pillar_seed: np.ndarray | None = None
        self.settle_count = np.zeros(len(originals), dtype=int)
        # Step-to-step load cache: step/pulse stimuli hold their activity
        # vector constant across most steps, so the (n, S_active) load
        # batches are recomputed only when the activity actually moves.
        self._loads_activity: np.ndarray | None = None
        self._loads_cached: list[np.ndarray] | None = None
        self._rhs_buffers: list[tuple[np.ndarray, np.ndarray]] | None = None

    # ------------------------------------------------------------------
    @property
    def active_columns(self) -> np.ndarray:
        """Global result-column indices of the still-active scenarios."""
        return self.columns[self.active]

    def activity(self, t: float) -> np.ndarray:
        """``(S_active,)`` stimulus activity at time ``t``."""
        return np.array(
            [self.originals[k].activity_at(t) for k in self.active]
        )

    def loads_at(self, t: float) -> list[np.ndarray]:
        """Per-tier ``(n, S_active)`` device currents at time ``t``
        (cached between steps with identical activity vectors)."""
        a = self.activity(t)
        if self._loads_cached is None or not np.array_equal(
            a, self._loads_activity
        ):
            self._loads_cached = [
                base[:, self.active] * a[None, :] for base in self.base_scaled
            ]
            self._loads_activity = a
        return self._loads_cached

    def narrow(self, keep: np.ndarray) -> None:
        """Drop retired columns: slice the run state and rebuild the
        companion solver over the survivors (reusing the cached plane
        factors -- no refactorization)."""
        self.active = self.active[keep]
        self.settle_count = self.settle_count[keep]
        self.v = self.v[:, :, keep]
        self._loads_activity = None
        self._loads_cached = None
        self._rhs_buffers = None
        if self.pillar_seed is not None:
            self.pillar_seed = self.pillar_seed[:, keep]
        if self.active.size:
            self.comp_solver = BatchedVPSolver(
                self._comp_stack,
                ScenarioSet([self._stripped[k] for k in self.active]),
                self._vp_config,
                planes=self._comp_planes,
            )

    def step_rhs(self, loads_t: list[np.ndarray]) -> list[np.ndarray]:
        """Per-tier companion RHS ``pad - (loads - (C/h) v_prev)`` into
        reused buffers -- the exact FP op grouping of the sequential
        path's ``update_loads(loads - g_cap * v)``, without allocating
        six ``(n, S_active)`` temporaries per step (the downstream
        ``set_rhs`` copies into its own partitions)."""
        if (
            self._rhs_buffers is None
            or self._rhs_buffers[0][0].shape != loads_t[0].shape
        ):
            self._rhs_buffers = [
                (np.empty_like(loads), np.empty_like(loads))
                for loads in loads_t
            ]
        out = []
        for l, loads in enumerate(loads_t):
            history, rhs = self._rhs_buffers[l]
            np.multiply(self.g_cap[l][:, None], self.v[l], out=history)
            np.subtract(loads, history, out=history)
            np.subtract(self.pad_comp[l][:, None], history, out=rhs)
            out.append(rhs)
        return out

    def settles_by(self, t: float) -> np.ndarray:
        """``(S_active,)`` mask of scenarios whose stimulus is constant
        from time ``t`` on (pulses never settle)."""
        out = np.zeros(self.active.size, dtype=bool)
        for pos, k in enumerate(self.active):
            spec = self.originals[k].stimulus
            settles = 0.0 if spec is None else spec.settles_at()
            out[pos] = settles is not None and t >= settles
        return out


class BatchedTransientSolver:
    """Backward-Euler transient analysis of a whole scenario set.

    Parameters
    ----------
    stack:
        The power grid; its stored loads are the activity-1 baseline
        every scenario's ``load_scale`` and stimulus multiply.
    scenarios:
        A :class:`~repro.scenarios.spec.ScenarioSet` (or anything
        :meth:`~repro.scenarios.spec.ScenarioSet.ensure` accepts).  All
        scenario knobs participate: ``load_scale``, ``r_tsv_scale``,
        ``r_seg_scale``, ``plane_scale``, ``cap_scale``, ``stimulus``.
    capacitance:
        Baseline node decap: per-tier ``(rows, cols)`` arrays (F) or a
        scalar for every non-TSV node; scenarios scale it via
        ``cap_scale``.
    dt:
        Backward-Euler step (s), shared by all scenarios (the companion
        factors depend on it).
    config:
        :class:`BatchedTransientConfig`; defaults preserve exact parity
        with the sequential solver.
    factor_cache:
        Optional shared :class:`~repro.core.planes.PlaneFactorCache`;
        pass one to reuse factors across engines (e.g. several step
        sizes over the same grid).  Entries this engine touches are
        pinned.
    """

    def __init__(
        self,
        stack: PowerGridStack,
        scenarios,
        capacitance,
        dt: float,
        config: BatchedTransientConfig | None = None,
        *,
        factor_cache: PlaneFactorCache | None = None,
    ):
        t0 = time.perf_counter()
        if dt <= 0:
            raise ReproError("dt must be positive")
        self.stack = stack
        self.dt = float(dt)
        self.scenarios = ScenarioSet.ensure(scenarios)
        self.config = config or BatchedTransientConfig()
        self.base_caps = normalize_capacitance(stack, capacitance)

        n_tiers = stack.n_tiers
        grouped: dict[tuple, tuple[list[Scenario], list[int]]] = {}
        for col, s in enumerate(self.scenarios):
            key = (
                tuple(s.tier_plane_scales(n_tiers)),
                tuple(s.tier_cap_scales(n_tiers)),
            )
            members, columns = grouped.setdefault(key, ([], []))
            members.append(s)
            columns.append(col)

        # NOT `factor_cache or ...`: an empty cache is falsy (__len__).
        self.cache = (
            factor_cache
            if factor_cache is not None
            else PlaneFactorCache(max_entries=max(8, 2 * len(grouped)))
        )
        count0 = self.cache.factorizations
        vp_config = self.config.vp_config()
        self.groups = [
            _ScenarioGroup(
                stack, members, columns, self.base_caps, self.dt,
                self.cache, vp_config,
            )
            for members, columns in grouped.values()
        ]
        #: LU factorizations this engine's construction performed --
        #: scales with the number of distinct (plane_scale, cap_scale)
        #: groups, never with the scenario count.
        self.n_factorizations = self.cache.factorizations - count0
        self._setup_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def _check_probes(
        self, probes: Sequence[tuple[int, int, int]]
    ) -> list[tuple[int, int, int]]:
        stack = self.stack
        out = []
        for l, i, j in probes:
            if not 0 <= l < stack.n_tiers:
                raise GridError(f"probe tier {l} outside 0..{stack.n_tiers - 1}")
            stack.tiers[l].node_index(i, j)  # validates (i, j)
            out.append((int(l), int(i), int(j)))
        return out

    def _raise_diverged(self, result, names: list[str], t: float) -> None:
        if result.converged.all():
            return
        bad = [n for n, ok in zip(names, result.converged) if not ok]
        raise ReproError(
            f"transient VP step at t={t:.3e}s did not converge for "
            f"{len(bad)} scenario(s): {bad[:5]}"
        )

    def run(
        self,
        t_end: float,
        *,
        probes: Sequence[tuple[int, int, int]] = (),
        v0: np.ndarray | None = None,
    ) -> BatchedTransientResult:
        """Advance every scenario from 0 to ``t_end``.

        Parameters
        ----------
        t_end:
            End time (s); the run takes ``ceil(t_end / dt)`` steps.
        probes:
            ``(tier, row, col)`` nodes whose waveforms are recorded for
            every scenario.
        v0:
            Optional initial field overriding the per-scenario DC
            operating point: ``(T, R, C)`` (shared by all scenarios) or
            ``(T, R, C, S)``.

        Returns
        -------
        BatchedTransientResult

        Raises
        ------
        ReproError
            When any scenario's VP solve fails to converge at some step
            (mirrors the sequential solver).
        GridError
            On a bad probe or ``v0`` shape.
        """
        t_start = time.perf_counter()
        stack = self.stack
        config = self.config
        n_tiers, rows, cols = stack.n_tiers, stack.rows, stack.cols
        n = rows * cols
        n_scen = len(self.scenarios)
        probes = self._check_probes(probes)
        probe_flat = [(l, i * cols + j) for l, i, j in probes]

        if t_end <= 0:
            raise ReproError("t_end must be positive")
        n_steps = int(np.ceil(t_end / self.dt))
        times = np.empty(n_steps + 1)
        times[0] = 0.0
        worst = np.empty((n_steps + 1, n_scen))
        probe_wave = np.empty((n_steps + 1, len(probes), n_scen))
        outer_iters = np.zeros((n_steps, n_scen), dtype=int)
        settled_step = np.full(n_scen, -1, dtype=int)
        final_fields = np.empty((n_tiers, n, n_scen))
        column_steps = 0

        # ------------------------------------------------------------------
        # t = 0: per-group DC operating point (or the caller's v0).
        if v0 is not None:
            v0 = np.asarray(v0, dtype=float)
            if v0.shape == (n_tiers, rows, cols):
                v0 = np.repeat(v0[..., None], n_scen, axis=3)
            if v0.shape != (n_tiers, rows, cols, n_scen):
                raise GridError(
                    f"v0 shape {v0.shape} != {(n_tiers, rows, cols)} or "
                    f"{(n_tiers, rows, cols, n_scen)}"
                )
        for group in self.groups:
            cols_g = group.active_columns
            if v0 is None:
                loads0 = group.loads_at(0.0)
                group.dc_solver.set_rhs(
                    [
                        group.pad_dc[l][:, None] - loads0[l]
                        for l in range(n_tiers)
                    ]
                )
                seed = None
                if config.v0_init == "loadshare" and stack.pillars.count:
                    # The stripped scenarios carry load_scale 1, so the
                    # solver's own loadshare seed would miss the corner
                    # scales; feed it the actual t=0 column totals
                    # (column-contiguous sums match the sequential
                    # solver's per-tier sums bitwise).
                    totals = np.stack(
                        [
                            np.asfortranarray(loads0[l]).sum(axis=0)
                            for l in range(n_tiers)
                        ]
                    )
                    seed = loadshare_v0(
                        stack.v_pin,
                        group.dc_solver.r_seg,
                        totals,
                        stack.pillars.count,
                    )
                dc_res = group.dc_solver.solve(v0=seed)
                group.v = dc_res.voltages.reshape(n_tiers, n, cols_g.size)
                group.pillar_seed = dc_res.pillar_v0
            else:
                group.v = np.ascontiguousarray(
                    v0.reshape(n_tiers, n, n_scen)[:, :, cols_g]
                )
                group.pillar_seed = None
            worst[0, cols_g] = group.v.min(axis=(0, 1))
            for p, (l, flat) in enumerate(probe_flat):
                probe_wave[0, p, cols_g] = group.v[l, flat]

        # ------------------------------------------------------------------
        # Backward-Euler steps.
        tr = obs.tracer()
        reg = obs.metrics()
        for k in range(1, n_steps + 1):
            t = k * self.dt
            times[k] = t
            for group in self.groups:
                if not group.active.size:
                    continue
                cols_g = group.active_columns
                column_steps += cols_g.size
                reg.add("transient.column_steps", int(cols_g.size))
                t0s = time.perf_counter()
                group.comp_solver.set_rhs(group.step_rhs(group.loads_at(t)))
                res = group.comp_solver.solve(v0=group.pillar_seed)
                if tr.enabled:
                    tr.add_complete(
                        "step.solve", t0s, time.perf_counter() - t0s,
                        step=k, scenarios=int(cols_g.size),
                    )
                self._raise_diverged(
                    res, [self.scenarios[c].name for c in cols_g], t
                )
                v_prev = group.v
                group.v = res.voltages.reshape(n_tiers, n, cols_g.size)
                group.pillar_seed = res.pillar_v0
                outer_iters[k - 1, cols_g] = res.outer_iterations
                worst[k, cols_g] = group.v.min(axis=(0, 1))
                for p, (l, flat) in enumerate(probe_flat):
                    probe_wave[k, p, cols_g] = group.v[l, flat]

                if config.settle_tol > 0 and k < n_steps:
                    delta = np.abs(group.v - v_prev).max(axis=(0, 1))
                    quiet = (delta <= config.settle_tol) & group.settles_by(t)
                    group.settle_count = np.where(
                        quiet, group.settle_count + 1, 0
                    )
                    retire = group.settle_count >= config.settle_window
                    if np.any(retire):
                        reg.add("transient.retirements", int(retire.sum()))
                        retired_cols = cols_g[retire]
                        settled_step[retired_cols] = k
                        worst[k + 1 :, retired_cols] = worst[k, retired_cols]
                        probe_wave[k + 1 :, :, retired_cols] = probe_wave[
                            k : k + 1, :, retired_cols
                        ]
                        final_fields[:, :, retired_cols] = group.v[:, :, retire]
                        group.narrow(~retire)

        for group in self.groups:
            if group.active.size:
                final_fields[:, :, group.active_columns] = group.v

        stats = BatchedTransientStats(
            setup_seconds=self._setup_seconds,
            solve_seconds=time.perf_counter() - t_start,
            n_steps=n_steps,
            n_groups=self.n_groups,
            factorizations=self.n_factorizations,
            column_steps=column_steps,
        )
        reg.add("transient.steps", n_steps)
        if tr.enabled:
            tr.add_complete(
                "transient.run", t_start, stats.solve_seconds,
                steps=n_steps, scenarios=n_scen, groups=self.n_groups,
            )
        return BatchedTransientResult(
            times=times,
            worst_voltage=worst,
            probe_voltages=probe_wave,
            probes=probes,
            voltages=final_fields.reshape(n_tiers, rows, cols, n_scen),
            outer_iterations=outer_iters,
            settled_step=settled_step,
            scenario_names=self.scenarios.names,
            stats=stats,
        )


def solve_transient_batch(
    stack: PowerGridStack,
    scenarios,
    capacitance,
    dt: float,
    t_end: float,
    *,
    probes: Sequence[tuple[int, int, int]] = (),
    factor_cache: PlaneFactorCache | None = None,
    **config_kwargs,
) -> BatchedTransientResult:
    """One-shot convenience: build a batched transient solver and run it."""
    solver = BatchedTransientSolver(
        stack,
        scenarios,
        capacitance,
        dt,
        BatchedTransientConfig(**config_kwargs),
        factor_cache=factor_cache,
    )
    return solver.run(t_end, probes=probes)


__all__ = [
    "BatchedTransientConfig",
    "BatchedTransientResult",
    "BatchedTransientSolver",
    "BatchedTransientStats",
    "solve_transient_batch",
]
