"""The 3-D Voltage Propagation (VP) method -- the paper's contribution.

One outer iteration implements Fig. 2/3 of the paper:

1. **CVN (intra-plane voltage calculation).**  Starting from the
   bottommost tier (layer 0, farthest from the package pins), solve each
   tier's plane with its TSV nodes held at fixed voltages -- layer 0 at the
   current guesses ``V0(j)``, higher layers at the values propagated from
   below.  TSV segment resistances are deliberately *not* part of these
   plane solves ("a resistance should not be processed twice").
2. **TSV current computation.**  KCL at each TSV node yields the current
   the pillar delivers into the plane; accumulating these bottom-up gives
   the current through each TSV segment (each TSV feeds its own tier plus
   all tiers farther from the pins).
3. **Voltage propagation.**  ``V_{l+1}(j) = V_l(j) + i_seg,l(j) r_seg,l(j)``
   climbs the pillar; applying it to the topmost segment produces the
   "propagated source voltage" ``V'dd(j)``.
4. **VDA.**  The mismatch ``Vdiff(j) = VDD - V'dd(j)`` adjusts the layer-0
   guesses; iterate until ``max_j |Vdiff| < epsilon``.

At the fixed point the propagated pin voltages equal VDD exactly, so the
assembled 3-D system's KCL/KVL hold everywhere and VP returns the true DC
solution up to the inner tolerance (tests verify this against the direct
solver).

The intra-plane phase is pluggable: the paper's row-based method
(``inner="rb"``), a cached per-tier sparse factorization (``inner="direct"``
-- the plane matrices never change across outer iterations, so each outer
iteration costs only back-substitutions), or Jacobi-PCG (``inner="cg"``).
Benchmark E11 compares them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import ConvergenceError, GridError, ReproError
from repro.core.planes import ReducedPlaneSystem, group_tiers
from repro.core.rowbased import RowBasedConfig, RowBasedSolver, estimate_optimal_omega
from repro.core.tsv import pillar_drawn_currents, plane_matrices
from repro.core.vda import VDAPolicy, make_vda_policy
from repro.grid.stack3d import PowerGridStack
from repro.linalg.cg import cg

INNER_SOLVERS = ("rb", "direct", "cg")

#: Gain-bound damping below which the ``"auto"`` VDA rule abandons the
#: paper's adaptive policy for Anderson acceleration (stiff pillars).
AUTO_ETA_THRESHOLD = 0.05
#: Anderson window the ``"auto"`` rule uses in the stiff regime.
AUTO_ANDERSON_WINDOW = 30


def resolve_vda_policy(
    vda: str | VDAPolicy, eta, auto_eta
) -> VDAPolicy:
    """Materialize a VDA policy -- shared by the single-scenario and
    batched solvers so the ``"auto"`` rule cannot drift between them.

    ``"auto"`` chooses the paper's adaptive rule when every (scenario's)
    gain-bound damping is healthy, and Anderson acceleration (window 30)
    when the stiffest pillar gain forces tiny damping.  ``auto_eta`` is
    a scalar (one scenario) or an ``(S,)`` per-scenario array; a batch
    mixing both regimes is handled by the batched solver, which applies
    this same threshold per scenario column.
    """
    if isinstance(vda, VDAPolicy):
        return vda
    name = vda
    eta = auto_eta if eta is None else eta
    kwargs: dict = {}
    if name == "auto":
        name = (
            "adaptive"
            if float(np.min(auto_eta)) >= AUTO_ETA_THRESHOLD
            else "anderson"
        )
        if name == "anderson":
            kwargs["m"] = AUTO_ANDERSON_WINDOW
    kwargs["eta" if name == "fixed" else "eta0"] = eta
    return make_vda_policy(name, **kwargs)


def loadshare_v0(
    v_pin: float, r_seg: np.ndarray, tier_totals: np.ndarray, n_pillars: int
) -> np.ndarray:
    """The ``v0_init="loadshare"`` seed -- one formula for both solvers.

    Approximates each pillar's fixed-point voltage by dropping an equal
    share of the tiers' total load through the pillar's segment
    resistances: segment ``l`` carries roughly ``sum_{m <= l} load_m / P``,
    so ``V0 ~= v_pin - sum_l r_seg[l] * i_seg,l``.  Accepts the
    single-scenario shapes (``r_seg (T, P)``, ``tier_totals (T,)``) and
    the batched ones (``(T, P, S)``, ``(T, S)``), returning ``(P,)`` or
    ``(P, S)`` accordingly.
    """
    seg_currents = np.cumsum(np.asarray(tier_totals, dtype=float), axis=0)
    seg_currents = seg_currents / max(n_pillars, 1)
    if r_seg.ndim == 3:
        drop = (r_seg * seg_currents[:, None, :]).sum(axis=0)
    else:
        drop = (r_seg * seg_currents[:, None]).sum(axis=0)
    return v_pin - drop


@dataclass
class VPConfig:
    """Tuning knobs of the VP solver.

    ``outer_tol`` bounds the propagated-source-voltage mismatch in volts
    (the paper's epsilon; its error budget is 0.5 mV -- the default 0.1 mV
    leaves headroom for inner-solver error).  ``vda`` picks the adjustment
    policy: ``"fixed"``/``"adaptive"`` are the paper's §III-C variants,
    ``"secant"``/``"anderson"`` quasi-Newton/accelerated extensions
    (benchmark E8), and ``"auto"`` (default) uses adaptive in the paper's
    low-TSV-resistance design regime and switches to Anderson when the
    pillar gain bound signals a stiff outer Jacobian (large ``r_tsv``).
    """

    outer_tol: float = 1e-4
    max_outer: int = 200
    vda: str | VDAPolicy = "auto"
    #: Initial VDA damping; None auto-scales it from the pillar gain bound
    #: (1 / max_j prod_l (1 + r_seg[l,j] * G_deg(j))), which keeps the
    #: outer iteration stable even for unusually resistive TSVs.
    eta: float | None = None
    inner: str = "rb"
    inner_tol: float = 1e-5
    inner_tol_ratio: float = 0.1
    inner_tol_cap: float = 1e-4
    rb_omega: float | None = None
    rb_ordering: str = "redblack"
    rb_max_sweeps: int = 20_000
    warm_start: bool = True
    record_history: bool = True
    raise_on_divergence: bool = False
    #: Layer-0 TSV voltage seed: ``"pin"`` is the paper's ``V0 = VDD``;
    #: ``"loadshare"`` pre-drops each pillar by its load share through the
    #: segment resistances, typically saving a few outer iterations.
    v0_init: str = "pin"

    def __post_init__(self) -> None:
        if self.inner not in INNER_SOLVERS:
            raise ReproError(
                f"unknown inner solver {self.inner!r}; use one of {INNER_SOLVERS}"
            )
        if self.v0_init not in ("pin", "loadshare"):
            raise ReproError(
                f"unknown v0_init {self.v0_init!r}; use 'pin' or 'loadshare'"
            )
        if self.outer_tol <= 0 or self.inner_tol <= 0:
            raise ReproError("tolerances must be positive")
        if self.max_outer < 1:
            raise ReproError("max_outer must be >= 1")


@dataclass
class OuterRecord:
    """One outer iteration's telemetry."""

    iteration: int
    max_vdiff: float
    inner_iterations: list[int]
    inner_tol: float


@dataclass
class VPStats:
    """Cost accounting of one solve."""

    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(
        default_factory=lambda: {"cvn": 0.0, "tsv": 0.0, "propagate": 0.0, "vda": 0.0}
    )
    outer_iterations: int = 0
    total_inner_iterations: int = 0
    memory_bytes: int = 0


@dataclass
class VPResult:
    """Solution of a 3-D stack by voltage propagation.

    ``voltages[l, i, j]`` is the node voltage of tier ``l`` (0 =
    bottommost).  ``pillar_v0`` holds the converged layer-0 TSV voltages;
    ``history`` the per-outer-iteration telemetry.
    """

    voltages: np.ndarray
    converged: bool
    outer_iterations: int
    max_vdiff: float
    pillar_v0: np.ndarray
    pillar_currents: np.ndarray
    history: list[OuterRecord]
    stats: VPStats

    def flat_voltages(self) -> np.ndarray:
        """Tier-major flat vector matching
        :func:`repro.grid.conductance.stack_system` ordering."""
        return self.voltages.ravel()

    def drop_field(self, v_nominal: float | None = None) -> np.ndarray:
        """Per-node IR drop ``|v_ref - v|`` as a ``(T, R, C)`` array.

        The field the sensitivity metrics and the optimizers consume
        (uses the stack pin voltage by default).
        """
        reference = self.info_v_pin if v_nominal is None else v_nominal
        return np.abs(reference - self.voltages)

    def worst_ir_drop(self, v_nominal: float | None = None) -> float:
        """Worst IR drop in volts (uses the stack pin voltage by default)."""
        return float(np.max(self.drop_field(v_nominal)))

    # set by the solver; kept out of __init__ noise
    info_v_pin: float = 0.0


class VoltagePropagationSolver:
    """Reusable VP solver bound to one stack.

    Structure-dependent setup (row factorizations or plane LU factors)
    happens once in the constructor; :meth:`solve` may be called many
    times (e.g. after load changes via :meth:`update_loads`).
    """

    def __init__(self, stack: PowerGridStack, config: VPConfig | None = None):
        t_start = time.perf_counter()
        self.stack = stack
        self.config = config or VPConfig()
        self.rows, self.cols = stack.rows, stack.cols
        self.n_tiers = stack.n_tiers
        self.pillar_flat = stack.pillar_flat_indices()
        self.pillar_mask = stack.pillar_mask()
        self.has_pin = stack.pillars.has_pin
        self.r_seg = stack.pillars.r_seg
        self.v_pin = stack.v_pin

        # Per-tier plane systems -- used for TSV current extraction in all
        # inner modes (and as the basis of the direct/cg reduced systems).
        # Tiers sharing wire geometry (the paper replicates one tier) share
        # one matrix; right-hand sides stay per-tier (loads may differ).
        self._tier_group = group_tiers(stack)
        self._planes = plane_matrices(stack, groups=self._tier_group)

        if self.config.inner == "rb":
            self._setup_rb()
        else:
            self._setup_reduced()

        # Stability bound for the VDA damping: raising V0(j) by 1 V raises
        # the propagated source voltage by at most
        # prod_l (1 + r_seg[l,j] * G_deg(j)) volts, G_deg being the plane
        # conductance incident at the pillar node.  1 / (that bound) is a
        # safe Richardson step for the diagonal of the outer Jacobian.
        degree_all = stack.tiers[0].degree_conductance().ravel()[self.pillar_flat]
        gain_bound = np.ones(self.pillar_flat.size)
        for l in range(self.n_tiers):
            gain_bound *= 1.0 + self.r_seg[l] * degree_all
        self.pillar_gain_bound = gain_bound
        self.auto_eta = float(min(0.5, 1.0 / max(gain_bound.max(), 1.0)))

        # Voltage scale for the residual of un-pinned pillars: total pillar
        # resistance plus a local plane-spreading estimate.
        if not np.all(self.has_pin):
            degree = stack.tiers[0].degree_conductance().ravel()[self.pillar_flat]
            series = self.r_seg[:-1].sum(axis=0) if self.n_tiers > 1 else np.zeros(
                self.pillar_flat.shape
            )
            self._r_unit = series + 1.0 / np.maximum(degree, 1e-12)
        else:
            self._r_unit = None

        self._setup_seconds = time.perf_counter() - t_start

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _tier_base_rhs(self, tier) -> np.ndarray:
        """Constant intra-plane RHS of one tier (zeroed at pillar nodes)."""
        base = tier.g_pad * tier.v_pad - tier.loads
        base[self.pillar_mask] = 0.0
        return base

    def _setup_rb(self) -> None:
        config = self.config
        rb_config = RowBasedConfig(
            tol=config.inner_tol,
            max_sweeps=config.rb_max_sweeps,
            omega=1.0,
            ordering=config.rb_ordering,
        )
        solvers: dict[int, RowBasedSolver] = {}
        self._rb_solvers = []
        self._rb_base = []
        for l, tier in enumerate(self.stack.tiers):
            group = self._tier_group[l]
            if group not in solvers:
                solvers[group] = RowBasedSolver(
                    self.stack.tiers[group], self.pillar_mask, rb_config
                )
            self._rb_solvers.append(solvers[group])
            self._rb_base.append(self._tier_base_rhs(tier))
        if config.rb_omega is None:
            omega, _rho = estimate_optimal_omega(
                self._rb_solvers[0], n_iter=12
            )
            self._rb_omega = omega
        else:
            self._rb_omega = config.rb_omega

    def _setup_reduced(self) -> None:
        """Reduced free-node systems for the direct/cg inner solvers.

        The partitioned structure (and, for ``direct``, the shared LU
        factors) lives in :class:`ReducedPlaneSystem` -- the same kernel
        the batched scenario engine drives with multi-column RHS
        matrices; here it runs with single columns (batch size 1).
        """
        self._reduced = ReducedPlaneSystem(
            self.stack,
            groups=self._tier_group,
            planes=self._planes,
            factorize=self.config.inner == "direct",
        )
        self._free = self._reduced.free

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Explicit accounting of solver state (factors, matrices, fields).

        Objects shared between replicated tiers are counted once.
        """
        total = 0
        seen: set[int] = set()

        def once(obj, n_bytes: int) -> int:
            if id(obj) in seen:
                return 0
            seen.add(id(obj))
            return n_bytes

        def csr_bytes(matrix) -> int:
            return once(
                matrix,
                matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes,
            )

        for matrix, rhs in self._planes:
            total += csr_bytes(matrix) + rhs.nbytes
        if self.config.inner == "rb":
            for solver, base in zip(self._rb_solvers, self._rb_base):
                total += once(solver, solver.memory_bytes) + base.nbytes
        else:
            total += self._reduced.memory_bytes
        # Voltage fields and pillar vectors.
        total += self.n_tiers * self.rows * self.cols * 8
        total += 5 * self.pillar_flat.size * 8
        return int(total)

    # ------------------------------------------------------------------
    # Intra-plane solve (phase 1)
    # ------------------------------------------------------------------
    def _solve_tier(
        self,
        tier_index: int,
        pillar_voltages: np.ndarray,
        warm: np.ndarray,
        tol: float,
    ) -> tuple[np.ndarray, int]:
        """Solve one tier with its pillar nodes fixed; returns (field,
        inner iterations)."""
        if self.config.inner == "rb":
            dvals = warm.copy()
            dvals[self.stack.pillars.positions[:, 0],
                  self.stack.pillars.positions[:, 1]] = pillar_voltages
            result = self._rb_solvers[tier_index].solve(
                dirichlet_values=dvals,
                v0=warm if self.config.warm_start else None,
                tol=tol,
                omega=self._rb_omega,
                base_rhs=self._rb_base[tier_index],
            )
            return result.v, result.sweeps

        reduced = self._reduced
        v_field = warm.copy().ravel()
        if self.config.inner == "direct":
            x = reduced.solve_free(tier_index, pillar_voltages)
            iterations = 1
        else:
            b = reduced.reduced_rhs(tier_index, pillar_voltages)
            inv_diag = reduced.jacobi_inv[tier_index]
            x0 = v_field[self._free] if self.config.warm_start else None
            result = cg(
                reduced.a_ff[tier_index],
                b,
                x0=x0,
                m_inv=lambda r: inv_diag * r,
                tol=tol,
                criterion="max_dx",
                max_iter=50_000,
            )
            x = result.x
            iterations = result.iterations
        v_field[self._free] = x
        v_field[self.pillar_flat] = pillar_voltages
        return v_field.reshape(self.rows, self.cols), iterations

    # ------------------------------------------------------------------
    # Outer loop
    # ------------------------------------------------------------------
    def solve(self, v0: np.ndarray | None = None) -> VPResult:
        """Run the VP outer iteration to convergence.

        ``v0`` optionally seeds the layer-0 TSV voltages (defaults to the
        pin voltage, the paper's initialization).
        """
        config = self.config
        t_start = time.perf_counter()
        n_pillars = self.pillar_flat.size
        if v0 is None:
            v0 = self._initial_v0()
        else:
            v0 = np.array(v0, dtype=float)
            if v0.shape != (n_pillars,):
                raise GridError(
                    f"v0 has shape {v0.shape}, expected ({n_pillars},)"
                )

        policy = self._resolve_vda_policy()
        policy.reset(n_pillars)

        voltages = np.full((self.n_tiers, self.rows, self.cols), self.v_pin)
        stats = VPStats(setup_seconds=self._setup_seconds)
        phase = stats.phase_seconds
        tr = obs.tracer()
        residual_series = obs.active_series("vp.residual")
        history: list[OuterRecord] = []
        prev_max_f: float | None = None
        converged = False
        max_f = np.inf
        cumulative = np.zeros(n_pillars)

        for outer in range(1, config.max_outer + 1):
            inner_tol = self._inner_tolerance(prev_max_f)
            pillar_v = v0.copy()
            cumulative = np.zeros(n_pillars)
            inner_iters: list[int] = []

            for l in range(self.n_tiers):
                t0 = time.perf_counter()
                field_l, iters = self._solve_tier(
                    l, pillar_v, voltages[l], inner_tol
                )
                voltages[l] = field_l
                dt = time.perf_counter() - t0
                phase["cvn"] += dt
                if tr.enabled:
                    tr.add_complete("cvn", t0, dt, outer=outer, tier=l)

                t0 = time.perf_counter()
                matrix, rhs = self._planes[l]
                drawn = pillar_drawn_currents(
                    matrix, rhs, field_l, self.pillar_flat
                )
                cumulative += drawn
                dt = time.perf_counter() - t0
                phase["tsv"] += dt
                if tr.enabled:
                    tr.add_complete("tsv", t0, dt, outer=outer, tier=l)

                t0 = time.perf_counter()
                pillar_v = pillar_v + cumulative * self.r_seg[l]
                phase["propagate"] += time.perf_counter() - t0
                inner_iters.append(iters)

            # Residual: propagated-source-voltage gap at pinned pillars,
            # leftover pillar current (in volts) at un-pinned ones.
            if self._r_unit is None:
                residual = self.v_pin - pillar_v
            else:
                residual = np.where(
                    self.has_pin,
                    self.v_pin - pillar_v,
                    -cumulative * self._r_unit,
                )
            max_f = float(np.max(np.abs(residual))) if n_pillars else 0.0
            stats.total_inner_iterations += sum(inner_iters)
            if residual_series is not None:
                residual_series.append(outer, max_f)
            if config.record_history:
                history.append(
                    OuterRecord(
                        iteration=outer,
                        max_vdiff=max_f,
                        inner_iterations=inner_iters,
                        inner_tol=inner_tol,
                    )
                )
            if max_f <= config.outer_tol:
                converged = True
                stats.outer_iterations = outer
                break

            t0 = time.perf_counter()
            v0 = policy.update(v0, residual)
            phase["vda"] += time.perf_counter() - t0
            prev_max_f = max_f
            stats.outer_iterations = outer

        stats.solve_seconds = time.perf_counter() - t_start
        stats.memory_bytes = self.memory_bytes
        obs.add("vp.outer_iterations", stats.outer_iterations)
        if tr.enabled:
            tr.add_complete(
                "vp.solve", t_start, stats.solve_seconds,
                outer_iterations=stats.outer_iterations, converged=converged,
            )
        result = VPResult(
            voltages=voltages,
            converged=converged,
            outer_iterations=stats.outer_iterations,
            max_vdiff=max_f,
            pillar_v0=v0,
            pillar_currents=cumulative,
            history=history,
            stats=stats,
        )
        result.info_v_pin = self.v_pin
        if config.raise_on_divergence and not converged:
            raise ConvergenceError(
                f"VP did not converge in {config.max_outer} outer iterations "
                f"(max |Vdiff| = {max_f:.3e} V)",
                stats.outer_iterations,
                max_f,
            )
        return result

    def _initial_v0(self) -> np.ndarray:
        """Default layer-0 TSV voltage seed per ``config.v0_init``
        (see :func:`loadshare_v0`)."""
        n_pillars = self.pillar_flat.size
        if self.config.v0_init == "pin" or n_pillars == 0:
            return np.full(n_pillars, self.v_pin)
        tier_totals = np.array(
            [tier.total_load() for tier in self.stack.tiers]
        )
        return loadshare_v0(self.v_pin, self.r_seg, tier_totals, n_pillars)

    def _resolve_vda_policy(self) -> VDAPolicy:
        """Materialize the configured VDA policy (see
        :func:`resolve_vda_policy`)."""
        return resolve_vda_policy(
            self.config.vda, self.config.eta, self.auto_eta
        )

    def _inner_tolerance(self, prev_max_f: float | None) -> float:
        """Inexact inner solves, gain-aware.

        A plane-solve error of ``tau`` volts perturbs the propagated
        source voltage by up to ``gain * tau`` (the drawn-current error is
        amplified through every TSV segment), so the inner tolerance must
        shrink with the pillar gain bound or the outer residual bottoms
        out on inner noise.  The schedule targets an F-accuracy of a
        fraction of the current outer mismatch (classic inexact-Newton
        forcing), never sloppier than a tenth of the outer tolerance.
        """
        config = self.config
        gain = float(max(self.pillar_gain_bound.max(), 1.0))
        if prev_max_f is None:
            f_target = 10.0 * config.outer_tol
        else:
            f_target = max(
                config.inner_tol_ratio * prev_max_f, 0.1 * config.outer_tol
            )
        return float(
            np.clip(
                f_target / gain, config.inner_tol / gain, config.inner_tol_cap
            )
        )

    # ------------------------------------------------------------------
    def update_loads(self, tier_loads: list[np.ndarray]) -> None:
        """Swap device currents without rebuilding factorizations.

        Only the plane right-hand sides depend on loads; matrices and
        factors survive, which makes repeated what-if analyses cheap.
        """
        if len(tier_loads) != self.n_tiers:
            raise GridError(
                f"expected {self.n_tiers} load arrays, got {len(tier_loads)}"
            )
        for l, loads in enumerate(tier_loads):
            loads = np.asarray(loads, dtype=float)
            tier = self.stack.tiers[l]
            if loads.shape != (self.rows, self.cols):
                raise GridError(
                    f"tier {l} loads shape {loads.shape} != "
                    f"{(self.rows, self.cols)}"
                )
            if np.any(loads.ravel()[self.pillar_flat] != 0):
                raise GridError(f"tier {l}: loads violate TSV keep-out")
            tier.loads = loads.copy()
            matrix, _ = self._planes[l]
            rhs = tier.g_pad.ravel() * tier.v_pad - loads.ravel()
            self._planes[l] = (matrix, rhs)
            if self.config.inner == "rb":
                self._rb_base[l] = self._tier_base_rhs(tier)
            else:
                self._reduced.update_rhs(l, rhs)


def solve_vp(stack: PowerGridStack, **config_kwargs) -> VPResult:
    """One-shot convenience: build a solver and run it."""
    return VoltagePropagationSolver(stack, VPConfig(**config_kwargs)).solve()
