"""TSV current bookkeeping (phase 2 of the VP method).

After an intra-plane solve, Kirchhoff's current law at each TSV node gives
the current the pillar must deliver into that plane: the node's net outflow
into its in-plane neighbours plus any local load/pad terms.  Summing these
per-plane drawn currents from the bottommost tier upward yields the current
through each successive TSV segment -- each TSV feeds its own tier plus
every tier farther from the pins (§III-B-1).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.grid.conductance import grid2d_matrix
from repro.grid.grid2d import Grid2D
from repro.grid.stack3d import PowerGridStack


def plane_matrices(
    stack: PowerGridStack,
    groups: list[int] | None = None,
) -> list[tuple[sp.csr_matrix, np.ndarray]]:
    """Per-tier in-plane nodal systems ``(G_t, b_t)`` (no TSV terms).

    These serve two purposes in the VP solver: extracting pillar drawn
    currents (``G_t v - b_t`` evaluated at pillar nodes) and, with the
    ``direct``/``cg`` inner solvers, building the reduced free-node
    systems.

    ``groups`` (as produced by the VP solver's tier grouping) lets tiers
    with identical wire geometry share one matrix object; right-hand
    sides are always per-tier.
    """
    out: list[tuple[sp.csr_matrix, np.ndarray]] = []
    shared: dict[int, sp.csr_matrix] = {}
    for l, tier in enumerate(stack.tiers):
        group = groups[l] if groups is not None else l
        if group in shared:
            matrix = shared[group]
            rhs = tier.g_pad.ravel() * tier.v_pad - tier.loads.ravel()
        else:
            matrix, rhs = grid2d_matrix(tier)
            shared[group] = matrix
        out.append((matrix, rhs))
    return out


def pillar_drawn_currents(
    plane_matrix: sp.csr_matrix,
    plane_rhs: np.ndarray,
    v_plane: np.ndarray,
    pillar_flat: np.ndarray,
) -> np.ndarray:
    """Current (A) delivered by each pillar into this plane.

    ``G_t v - b_t`` is the nodal KCL residual: zero at solved free nodes,
    and exactly the externally supplied current at the Dirichlet (pillar)
    nodes.  ``v_plane`` may be ``(rows, cols)`` or flat.
    """
    v_flat = np.asarray(v_plane, dtype=float).ravel()
    residual = plane_matrix @ v_flat - plane_rhs
    return residual[pillar_flat]


def plane_kcl_residual(
    grid: Grid2D, v_plane: np.ndarray, exclude_flat: np.ndarray | None = None
) -> float:
    """Max |KCL residual| (A) over the plane's free nodes -- the invariant
    the intra-plane phase must satisfy (tests and sanity checks)."""
    matrix, rhs = grid2d_matrix(grid)
    residual = matrix @ np.asarray(v_plane, dtype=float).ravel() - rhs
    if exclude_flat is not None and exclude_flat.size:
        keep = np.ones(residual.size, dtype=bool)
        keep[exclude_flat] = False
        residual = residual[keep]
    return float(np.max(np.abs(residual))) if residual.size else 0.0


def propagate_pillar_voltages(
    v_pillar: np.ndarray, cumulative_current: np.ndarray, r_segment: np.ndarray
) -> np.ndarray:
    """Phase-3 step: voltage at the next tier's pillar terminals.

    ``V_{l+1}(j) = V_l(j) + i_seg,l(j) * r_seg,l(j)`` -- the paper's
    propagation rule (Fig. 3c/d); also yields the "propagated source
    voltage" when applied to the topmost segment.
    """
    return v_pillar + cumulative_current * r_segment
