"""The paper's contribution: the row-based 2-D solver and the 3-D
Voltage Propagation method built on top of it."""

from repro.core.rowbased import (
    RowBasedConfig,
    RowBasedResult,
    RowBasedSolver,
    estimate_optimal_omega,
)
from repro.core.tsv import plane_matrices, pillar_drawn_currents
from repro.core.vda import (
    VDAPolicy,
    FixedEtaVDA,
    AdaptiveEtaVDA,
    PerPillarSecantVDA,
    AndersonVDA,
    make_vda_policy,
)
from repro.core.vp import (
    VPConfig,
    VPResult,
    VoltagePropagationSolver,
    solve_vp,
)
from repro.core.transient import (
    TransientVPSolver,
    TransientResult,
    normalize_capacitance,
    step_stimulus,
    pulse_train_stimulus,
)
from repro.core.transient_batch import (
    BatchedTransientConfig,
    BatchedTransientResult,
    BatchedTransientSolver,
    BatchedTransientStats,
    solve_transient_batch,
)

__all__ = [
    "RowBasedConfig",
    "RowBasedResult",
    "RowBasedSolver",
    "estimate_optimal_omega",
    "plane_matrices",
    "pillar_drawn_currents",
    "VDAPolicy",
    "FixedEtaVDA",
    "AdaptiveEtaVDA",
    "PerPillarSecantVDA",
    "AndersonVDA",
    "make_vda_policy",
    "VPConfig",
    "VPResult",
    "VoltagePropagationSolver",
    "solve_vp",
    "TransientVPSolver",
    "TransientResult",
    "normalize_capacitance",
    "step_stimulus",
    "pulse_train_stimulus",
    "BatchedTransientConfig",
    "BatchedTransientResult",
    "BatchedTransientSolver",
    "BatchedTransientStats",
    "solve_transient_batch",
]
