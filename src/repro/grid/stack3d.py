"""3-D power-grid stack: tiers connected by TSV pillars.

Geometry (matching the paper's Fig. 1/3):

* ``tiers[0]`` is the **bottommost** tier, farthest from the package pins.
* ``tiers[-1]`` is the **topmost** tier; the package pins attach above it.
* A *pillar* is a vertical chain of TSV segments through one (row, col)
  lattice position.  For a stack of ``T`` tiers, pillar ``p`` has ``T``
  resistive segments: segment ``l < T-1`` connects the tier-``l`` node to the
  tier-``l+1`` node, and segment ``T-1`` connects the topmost tier's node to
  the package pin held at ``v_pin`` volts.

Current therefore flows from the pins down through the pillars, each pillar
feeding the tier that contains it plus all tiers farther from the pins --
exactly the structure the Voltage Propagation method exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GridError
from repro.grid.grid2d import Grid2D


@dataclass
class PillarSet:
    """TSV pillars of a stack.

    Parameters
    ----------
    positions:
        ``(P, 2)`` integer array of (row, col) lattice positions; each pillar
        passes through the same position on every tier.
    r_seg:
        ``(T, P)`` segment resistances (ohm); ``r_seg[l, p]`` is the segment
        going *up* from tier ``l`` (to tier ``l+1``, or to the pin when
        ``l == T-1``).
    v_pin:
        Pin (package bump) voltage in volts: VDD for a power net, 0.0 for a
        ground net.
    has_pin:
        ``(P,)`` boolean mask; pillar ``p`` reaches a package pin above the
        topmost tier only when ``has_pin[p]``.  The paper's benchmarks pin
        every pillar (the default); sparse pin subsets model peripheral
        bump maps and are what makes random walks wander (experiment E7).
        For pillars without a pin, ``r_seg[T-1, p]`` is unused.
    """

    positions: np.ndarray
    r_seg: np.ndarray
    v_pin: float
    has_pin: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.int64)
        self.r_seg = np.asarray(self.r_seg, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise GridError(
                f"pillar positions must be (P, 2), got {self.positions.shape}"
            )
        if self.r_seg.ndim != 2:
            raise GridError(f"r_seg must be (T, P), got {self.r_seg.shape}")
        if self.r_seg.shape[1] != self.positions.shape[0]:
            raise GridError(
                "r_seg pillar count "
                f"{self.r_seg.shape[1]} != positions count {self.positions.shape[0]}"
            )
        if np.any(self.r_seg <= 0):
            raise GridError("TSV segment resistances must be positive")
        if self.has_pin is None:
            self.has_pin = np.ones(self.positions.shape[0], dtype=bool)
        self.has_pin = np.asarray(self.has_pin, dtype=bool)
        if self.has_pin.shape != (self.positions.shape[0],):
            raise GridError(
                f"has_pin has shape {self.has_pin.shape}, "
                f"expected ({self.positions.shape[0]},)"
            )
        if not self.has_pin.any():
            raise GridError("at least one pillar must reach a package pin")

    @property
    def count(self) -> int:
        """Number of pillars P."""
        return self.positions.shape[0]

    @property
    def n_tiers(self) -> int:
        """Number of tiers T implied by the segment table."""
        return self.r_seg.shape[0]

    @property
    def pin_count(self) -> int:
        """Number of pillars that reach a package pin."""
        return int(self.has_pin.sum())

    @classmethod
    def uniform(
        cls,
        positions: np.ndarray,
        n_tiers: int,
        r_tsv: float = 0.05,
        v_pin: float = 1.8,
        has_pin: np.ndarray | None = None,
    ) -> "PillarSet":
        """All segments share resistance ``r_tsv`` (the paper's 0.05 ohm)."""
        positions = np.asarray(positions, dtype=np.int64)
        r_seg = np.full((n_tiers, positions.shape[0]), float(r_tsv))
        return cls(positions=positions, r_seg=r_seg, v_pin=v_pin, has_pin=has_pin)


class PowerGridStack:
    """A 3-D power grid: ``T`` tiers plus TSV pillars and package pins.

    Use :func:`repro.grid.generators.synthesize_stack` to build benchmark
    stacks; this class only stores and validates the structure.
    """

    def __init__(
        self,
        tiers: list[Grid2D] | tuple[Grid2D, ...],
        pillars: PillarSet,
        name: str = "",
        net: str = "vdd",
    ):
        self.tiers: tuple[Grid2D, ...] = tuple(tiers)
        self.pillars = pillars
        self.name = name
        if net not in ("vdd", "gnd"):
            raise GridError(f"net must be 'vdd' or 'gnd', got {net!r}")
        self.net = net
        self._validate_structure()

    # ------------------------------------------------------------------
    def _validate_structure(self) -> None:
        if not self.tiers:
            raise GridError("a stack needs at least one tier")
        rows, cols = self.tiers[0].rows, self.tiers[0].cols
        for l, tier in enumerate(self.tiers):
            if (tier.rows, tier.cols) != (rows, cols):
                raise GridError(
                    f"tier {l} is {tier.rows}x{tier.cols}, expected {rows}x{cols}"
                )
        if self.pillars.n_tiers != len(self.tiers):
            raise GridError(
                f"pillar table covers {self.pillars.n_tiers} tiers, "
                f"stack has {len(self.tiers)}"
            )
        pos = self.pillars.positions
        if pos.size and (
            pos[:, 0].min() < 0
            or pos[:, 1].min() < 0
            or pos[:, 0].max() >= rows
            or pos[:, 1].max() >= cols
        ):
            raise GridError("pillar position outside tier lattice")
        # Pillar positions must be unique (one pillar per lattice site).
        flat = pos[:, 0] * cols + pos[:, 1]
        if np.unique(flat).size != flat.size:
            raise GridError("duplicate pillar positions")

    # ------------------------------------------------------------------
    @property
    def n_tiers(self) -> int:
        return len(self.tiers)

    @property
    def rows(self) -> int:
        return self.tiers[0].rows

    @property
    def cols(self) -> int:
        return self.tiers[0].cols

    @property
    def n_nodes(self) -> int:
        """Total grid-node count (pins are ideal sources, not nodes)."""
        return sum(t.n_nodes for t in self.tiers)

    @property
    def v_pin(self) -> float:
        return self.pillars.v_pin

    def pillar_flat_indices(self) -> np.ndarray:
        """Row-major in-tier node indices of the pillar positions, ``(P,)``."""
        pos = self.pillars.positions
        return pos[:, 0] * self.cols + pos[:, 1]

    def pillar_mask(self) -> np.ndarray:
        """Boolean ``(rows, cols)`` mask of pillar (TSV) lattice positions."""
        mask = np.zeros((self.rows, self.cols), dtype=bool)
        pos = self.pillars.positions
        mask[pos[:, 0], pos[:, 1]] = True
        return mask

    def total_load(self) -> float:
        """Total device current drawn from the stack (A)."""
        return float(sum(t.total_load() for t in self.tiers))

    def keepout_violations(self) -> int:
        """Number of pillar nodes that (incorrectly) carry a device load.

        The paper's keep-out rule forbids current sources at TSV nodes.
        """
        mask = self.pillar_mask()
        return int(sum(np.count_nonzero(t.loads[mask]) for t in self.tiers))

    def with_pin_mask(self, has_pin: np.ndarray) -> "PowerGridStack":
        """The same grid under a different package bump map.

        Tiers are shared, not copied: pin masks only affect the
        propagation phase (and the topmost segment folding), never the
        per-tier plane matrices, so the returned stack keeps the same
        plane-factor cache key -- the property the pin-placement
        optimizer's candidate evaluations rely on.
        """
        has_pin = np.asarray(has_pin, dtype=bool)
        return PowerGridStack(
            tiers=self.tiers,
            pillars=PillarSet(
                positions=self.pillars.positions,
                r_seg=self.pillars.r_seg,
                v_pin=self.pillars.v_pin,
                has_pin=has_pin.copy(),
            ),
            name=self.name,
            net=self.net,
        )

    def copy(self) -> "PowerGridStack":
        return PowerGridStack(
            tiers=[t.copy() for t in self.tiers],
            pillars=PillarSet(
                positions=self.pillars.positions.copy(),
                r_seg=self.pillars.r_seg.copy(),
                v_pin=self.pillars.v_pin,
                has_pin=self.pillars.has_pin.copy(),
            ),
            name=self.name,
            net=self.net,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"PowerGridStack({self.n_tiers}x{self.rows}x{self.cols}{label}, "
            f"{self.pillars.count} pillars, net={self.net}, "
            f"v_pin={self.v_pin}V)"
        )
