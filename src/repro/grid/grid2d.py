"""Regular 2-D power-grid mesh for a single tier.

A tier is a ``rows x cols`` lattice of nodes.  Adjacent nodes are connected
by resistive wire segments; devices drawing supply current are modeled as DC
current sources attached to nodes; optional in-plane pads tie nodes to an
ideal rail through a pad conductance (used for stand-alone 2-D problems --
tiers inside a 3-D stack receive power only through TSV pillars).

Sign conventions
----------------
``loads[i, j]`` is the current in amperes *drawn out of* the power net at
node ``(i, j)`` (positive for a device on the VDD net; use negative values
for the ground net where devices inject current into the net).

The DC node voltages solve ``G x = b`` where, for each node ``u``::

    sum_nb g_uv (x_u - x_v) + g_pad_u (x_u - v_pad) + loads_u = 0
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GridError


@dataclass
class Grid2D:
    """One tier of a power grid: a regular resistive mesh.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions (number of nodes per side, both >= 1; a useful
        grid has both >= 2).
    g_h:
        ``(rows, cols-1)`` conductances (S) of horizontal segments;
        ``g_h[i, j]`` connects node ``(i, j)`` to ``(i, j+1)``.
    g_v:
        ``(rows-1, cols)`` conductances of vertical segments;
        ``g_v[i, j]`` connects node ``(i, j)`` to ``(i+1, j)``.
    loads:
        ``(rows, cols)`` device currents (A) drawn from each node.
    g_pad:
        ``(rows, cols)`` conductance (S) from each node to the in-plane pad
        rail; zero where there is no pad.
    v_pad:
        Voltage (V) of the in-plane pad rail.
    """

    rows: int
    cols: int
    g_h: np.ndarray
    g_v: np.ndarray
    loads: np.ndarray = None  # type: ignore[assignment]
    g_pad: np.ndarray = None  # type: ignore[assignment]
    v_pad: float = 0.0
    name: str = ""
    _frozen: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise GridError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")
        if self.loads is None:
            self.loads = np.zeros((self.rows, self.cols))
        if self.g_pad is None:
            self.g_pad = np.zeros((self.rows, self.cols))
        self.g_h = np.asarray(self.g_h, dtype=float)
        self.g_v = np.asarray(self.g_v, dtype=float)
        self.loads = np.asarray(self.loads, dtype=float)
        self.g_pad = np.asarray(self.g_pad, dtype=float)
        self._check_shapes()

    def _check_shapes(self) -> None:
        expected = {
            "g_h": (self.rows, max(self.cols - 1, 0)),
            "g_v": (max(self.rows - 1, 0), self.cols),
            "loads": (self.rows, self.cols),
            "g_pad": (self.rows, self.cols),
        }
        for attr, shape in expected.items():
            actual = getattr(self, attr).shape
            if actual != shape:
                raise GridError(f"{attr} has shape {actual}, expected {shape}")
        if np.any(self.g_h < 0) or np.any(self.g_v < 0):
            raise GridError("wire conductances must be non-negative")
        if np.any(self.g_pad < 0):
            raise GridError("pad conductances must be non-negative")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count ``rows * cols``."""
        return self.rows * self.cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def node_index(self, i: int, j: int) -> int:
        """Flatten lattice coordinates to the row-major node index."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise GridError(f"node ({i}, {j}) outside {self.rows}x{self.cols} grid")
        return i * self.cols + j

    def node_coords(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`node_index`."""
        if not (0 <= index < self.n_nodes):
            raise GridError(f"node index {index} outside grid of {self.n_nodes} nodes")
        return divmod(index, self.cols)

    def total_load(self) -> float:
        """Total device current drawn from this tier (A)."""
        return float(self.loads.sum())

    def degree_conductance(self) -> np.ndarray:
        """``(rows, cols)`` sum of incident wire+pad conductances per node.

        This is the diagonal of the conductance matrix.
        """
        deg = np.zeros((self.rows, self.cols))
        if self.cols > 1:
            deg[:, :-1] += self.g_h
            deg[:, 1:] += self.g_h
        if self.rows > 1:
            deg[:-1, :] += self.g_v
            deg[1:, :] += self.g_v
        deg += self.g_pad
        return deg

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        rows: int,
        cols: int,
        r_wire: float = 1.0,
        *,
        r_row: float | None = None,
        r_col: float | None = None,
        name: str = "",
    ) -> "Grid2D":
        """Build a uniform mesh where every horizontal segment has
        resistance ``r_row`` and every vertical segment ``r_col`` (both
        default to ``r_wire``).
        """
        r_row = r_wire if r_row is None else r_row
        r_col = r_wire if r_col is None else r_col
        if r_row <= 0 or r_col <= 0:
            raise GridError("wire resistances must be positive")
        g_h = np.full((rows, max(cols - 1, 0)), 1.0 / r_row)
        g_v = np.full((max(rows - 1, 0), cols), 1.0 / r_col)
        return cls(rows=rows, cols=cols, g_h=g_h, g_v=g_v, name=name)

    def copy(self) -> "Grid2D":
        """Deep copy (arrays are duplicated)."""
        return Grid2D(
            rows=self.rows,
            cols=self.cols,
            g_h=self.g_h.copy(),
            g_v=self.g_v.copy(),
            loads=self.loads.copy(),
            g_pad=self.g_pad.copy(),
            v_pad=self.v_pad,
            name=self.name,
        )

    def with_loads(self, loads: np.ndarray) -> "Grid2D":
        """Return a copy with ``loads`` replaced."""
        out = self.copy()
        out.loads = np.asarray(loads, dtype=float)
        out._check_shapes()
        return out

    def is_uniform(self) -> bool:
        """True when all horizontal segments share one conductance and all
        vertical segments share one conductance (pads/loads may vary)."""
        h_uniform = self.g_h.size == 0 or bool(np.all(self.g_h == self.g_h.flat[0]))
        v_uniform = self.g_v.size == 0 or bool(np.all(self.g_v == self.g_v.flat[0]))
        return h_uniform and v_uniform

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Grid2D({self.rows}x{self.cols}{label}, "
            f"total_load={self.total_load():.4g}A, "
            f"pads={int(np.count_nonzero(self.g_pad))})"
        )
