"""Benchmark-grid synthesis following the paper's construction (§III-B-2).

The paper builds its 3-D benchmarks by replicating an IBM TAU 2011-style
planar power mesh three times, connecting the tiers with TSVs placed
uniformly at one node in four (pitch 2 in both directions), fixing the TSV
resistance to 0.05 ohm, and attaching an independent current source to
every non-TSV node (TSV keep-out).  Package pins sit above the topmost
tier at the pillar positions.

:func:`synthesize_stack` reproduces that construction with every parameter
exposed; :func:`paper_stack` applies the paper's defaults.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.grid.grid2d import Grid2D
from repro.grid.loads import make_loads
from repro.grid.perturb import perturb_conductances
from repro.grid.stack3d import PillarSet, PowerGridStack

#: Paper defaults (§III-B-2 and [14]): 0.05 ohm TSVs, one TSV per 4 nodes.
PAPER_R_TSV = 0.05
PAPER_TSV_PITCH = 2
PAPER_VDD = 1.8


def uniform_tier(rows: int, cols: int, r_wire: float = 1.0, name: str = "") -> Grid2D:
    """Uniform unloaded mesh -- convenience re-export of
    :meth:`Grid2D.uniform`."""
    return Grid2D.uniform(rows, cols, r_wire, name=name)


def uniform_tsv_positions(
    rows: int,
    cols: int,
    pitch: int = PAPER_TSV_PITCH,
    offset: tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Uniformly distributed TSV positions: every ``pitch``-th node in both
    directions (pitch 2 gives the paper's one-TSV-per-four-nodes density).

    Returns a ``(P, 2)`` int array of (row, col) positions.
    """
    if pitch < 1:
        raise GridError("TSV pitch must be >= 1")
    oi, oj = offset
    if not (0 <= oi < pitch and 0 <= oj < pitch):
        raise GridError(f"offset {offset} must lie inside one pitch cell")
    ii = np.arange(oi, rows, pitch)
    jj = np.arange(oj, cols, pitch)
    if ii.size == 0 or jj.size == 0:
        raise GridError("TSV pitch/offset leaves no pillar inside the tier")
    grid_i, grid_j = np.meshgrid(ii, jj, indexing="ij")
    return np.column_stack([grid_i.ravel(), grid_j.ravel()])


def random_tsv_positions(
    rows: int,
    cols: int,
    count: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """``count`` distinct random pillar positions (the paper notes VP is
    oblivious to the TSV distribution; this exercises that claim)."""
    if count < 1:
        raise GridError("need at least one TSV pillar")
    if count > rows * cols:
        raise GridError(f"cannot place {count} pillars on {rows * cols} nodes")
    gen = np.random.default_rng(rng)
    flat = gen.choice(rows * cols, size=count, replace=False)
    return np.column_stack([flat // cols, flat % cols])


def synthesize_tier(
    rows: int,
    cols: int,
    *,
    r_wire: float = 1.0,
    r_row: float | None = None,
    r_col: float | None = None,
    keepout: np.ndarray | None = None,
    load_pattern: str = "random",
    current_per_node: float = 1e-3,
    total_current: float | None = None,
    jitter_sigma: float = 0.0,
    rng: np.random.Generator | int | None = None,
    name: str = "",
) -> Grid2D:
    """One IBM-style planar tier: uniform mesh + synthesized loads.

    ``keepout`` marks nodes that must not carry loads (the TSV positions of
    the enclosing stack).
    """
    gen = np.random.default_rng(rng)
    tier = Grid2D.uniform(rows, cols, r_wire, r_row=r_row, r_col=r_col, name=name)
    if jitter_sigma > 0:
        tier = perturb_conductances(tier, jitter_sigma, gen)
    allowed = None if keepout is None else ~np.asarray(keepout, dtype=bool)
    tier.loads = make_loads(
        rows,
        cols,
        allowed,
        pattern=load_pattern,
        current_per_node=current_per_node,
        total_current=total_current,
        rng=gen,
    )
    return tier


def synthesize_stack(
    rows: int,
    cols: int,
    n_tiers: int = 3,
    *,
    r_wire: float = 1.0,
    r_row: float | None = None,
    r_col: float | None = None,
    tsv_pitch: int = PAPER_TSV_PITCH,
    tsv_positions: np.ndarray | None = None,
    r_tsv: float = PAPER_R_TSV,
    v_pin: float = PAPER_VDD,
    net: str = "vdd",
    load_pattern: str = "random",
    current_per_node: float = 1e-3,
    total_current: float | None = None,
    tier_activity: list[float] | tuple[float, ...] | None = None,
    replicate_tier: bool = True,
    jitter_sigma: float = 0.0,
    pin_fraction: float = 1.0,
    pin_mask: np.ndarray | None = None,
    rng: np.random.Generator | int | None = None,
    name: str = "",
) -> PowerGridStack:
    """Build a 3-D benchmark stack per the paper's construction.

    Parameters
    ----------
    rows, cols, n_tiers:
        Lattice size of each tier and the number of stacked tiers (the
        paper uses three).
    tsv_pitch / tsv_positions:
        Either a uniform pitch (paper: 2, i.e. one TSV node per four nodes)
        or an explicit ``(P, 2)`` position array.
    r_tsv:
        Resistance of every TSV segment (paper: 0.05 ohm).
    v_pin:
        Pin voltage; for ``net="gnd"`` this is forced to 0 and load signs
        flip (devices inject current into the ground net).
    tier_activity:
        Optional per-tier multiplier on the load currents (length
        ``n_tiers``); models tiers with different switching activity.
    replicate_tier:
        True (paper behaviour): synthesize one tier and replicate it
        verbatim on every plane.  False: draw independent loads per tier.
    pin_fraction / pin_mask:
        Which pillars reach a package pin.  The paper's benchmarks pin
        every pillar (``pin_fraction=1.0``, the default).  A fraction in
        (0, 1] picks a random subset; an explicit ``(P,)`` boolean
        ``pin_mask`` overrides it.  Sparse pins model peripheral bump maps
        and drive the random-walk trap experiment (E7).
    """
    if n_tiers < 1:
        raise GridError("a stack needs at least one tier")
    gen = np.random.default_rng(rng)
    if tsv_positions is None:
        tsv_positions = uniform_tsv_positions(rows, cols, tsv_pitch)
    else:
        tsv_positions = np.asarray(tsv_positions, dtype=np.int64)
    keepout = np.zeros((rows, cols), dtype=bool)
    keepout[tsv_positions[:, 0], tsv_positions[:, 1]] = True

    def one_tier(tier_idx: int) -> Grid2D:
        return synthesize_tier(
            rows,
            cols,
            r_wire=r_wire,
            r_row=r_row,
            r_col=r_col,
            keepout=keepout,
            load_pattern=load_pattern,
            current_per_node=current_per_node,
            total_current=total_current,
            jitter_sigma=jitter_sigma,
            rng=gen,
            name=f"{name}/tier{tier_idx}" if name else f"tier{tier_idx}",
        )

    if replicate_tier:
        prototype = one_tier(0)
        tiers = [prototype.copy() for _ in range(n_tiers)]
        for idx, tier in enumerate(tiers):
            tier.name = f"{name}/tier{idx}" if name else f"tier{idx}"
    else:
        tiers = [one_tier(idx) for idx in range(n_tiers)]

    if tier_activity is not None:
        if len(tier_activity) != n_tiers:
            raise GridError(
                f"tier_activity has {len(tier_activity)} entries, expected {n_tiers}"
            )
        for tier, activity in zip(tiers, tier_activity):
            if activity < 0:
                raise GridError("tier activity factors must be non-negative")
            tier.loads = tier.loads * float(activity)

    if net == "gnd":
        v_pin = 0.0
        for tier in tiers:
            tier.loads = -tier.loads

    n_pillars = tsv_positions.shape[0]
    if pin_mask is not None:
        has_pin = np.asarray(pin_mask, dtype=bool)
    elif pin_fraction >= 1.0:
        has_pin = None
    else:
        if pin_fraction <= 0:
            raise GridError("pin_fraction must be in (0, 1]")
        n_pins = max(1, int(round(pin_fraction * n_pillars)))
        has_pin = np.zeros(n_pillars, dtype=bool)
        has_pin[gen.choice(n_pillars, size=n_pins, replace=False)] = True

    pillars = PillarSet.uniform(
        tsv_positions, n_tiers, r_tsv=r_tsv, v_pin=v_pin, has_pin=has_pin
    )
    return PowerGridStack(tiers=tiers, pillars=pillars, name=name, net=net)


def paper_stack(
    plane_side: int,
    n_tiers: int = 3,
    *,
    seed: int | None = 0,
    name: str = "",
    **overrides,
) -> PowerGridStack:
    """A stack with the paper's exact construction defaults.

    ``plane_side`` is the tier lattice side length ``n`` (each tier has
    ``n*n`` nodes); the paper's C0 corresponds to ``plane_side=100``
    (3 x 100 x 100 = 30 K nodes).
    """
    params = dict(
        r_wire=1.0,
        tsv_pitch=PAPER_TSV_PITCH,
        r_tsv=PAPER_R_TSV,
        v_pin=PAPER_VDD,
        load_pattern="random",
        current_per_node=1e-3,
        rng=seed,
        name=name or f"paper-{plane_side}x{plane_side}x{n_tiers}",
    )
    params.update(overrides)
    return synthesize_stack(plane_side, plane_side, n_tiers, **params)
