"""Conductance/resistance perturbation (process-variation jitter).

The paper's benchmarks are uniform meshes; real extracted grids are not,
and real sign-off must bound IR drop under *process variations* that
perturb the conductances themselves.  This module supplies the sampling
primitives:

* i.i.d. multiplicative lognormal jitter on wire segments (the original
  behaviour, kept as :func:`perturb_conductances`);
* spatially-correlated fields via a truncated Karhunen-Loeve expansion
  of a separable exponential kernel (Ghanta et al., "Stochastic Power
  Grid Analysis Considering Process Variations" -- intra-die variation
  is smooth, not white noise);
* pad-conductance and TSV (via) resistance jitter at the stack level
  (:func:`perturb_stack`).

Every entry point is seedable through ``np.random.default_rng`` and
guarantees that ``sigma = 0`` is an exact no-op copy, which the
Monte Carlo subsystem (:mod:`repro.stochastic`) relies on for its
geometry-signature grouping.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.grid.grid2d import Grid2D
from repro.grid.stack3d import PillarSet, PowerGridStack


def _check_sigma(sigma: float, label: str) -> float:
    sigma = float(sigma)
    if sigma < 0:
        raise GridError(f"{label} must be non-negative")
    return sigma


def kl_gaussian_field(
    rows: int,
    cols: int,
    corr_length: float,
    rank: int = 16,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """One draw of a unit-variance Gaussian field with separable
    exponential correlation ``exp(-d/corr_length)`` per axis.

    The field is a truncated Karhunen-Loeve expansion: the separable
    kernel ``K = K_r (x) K_c`` has eigenpairs that are products of the
    1-D eigenpairs, so only two small (``rows x rows`` and
    ``cols x cols``) symmetric eigenproblems are solved and the ``rank``
    largest product-eigenvalue modes are kept.  The truncated field is
    renormalized pointwise to unit marginal variance so ``sigma`` keeps
    its meaning regardless of the rank.
    """
    if corr_length <= 0:
        raise GridError("corr_length must be positive (use iid jitter otherwise)")
    if rank < 1:
        raise GridError("KL rank must be >= 1")
    gen = np.random.default_rng(rng)

    def axis_modes(n: int) -> tuple[np.ndarray, np.ndarray]:
        distance = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
        kernel = np.exp(-distance / corr_length)
        values, vectors = np.linalg.eigh(kernel)
        order = np.argsort(values)[::-1]
        return values[order], vectors[:, order]

    lam_r, phi_r = axis_modes(rows)
    lam_c, phi_c = axis_modes(cols)
    # Keep the `rank` largest product eigenvalues lam_r[i] * lam_c[j].
    keep = min(rank, rows * cols)
    product = np.outer(lam_r, lam_c)
    flat = np.argsort(product, axis=None)[::-1][:keep]
    ii, jj = np.unravel_index(flat, product.shape)

    weights = np.sqrt(np.maximum(product[ii, jj], 0.0))
    xi = gen.standard_normal(keep)
    field = np.einsum(
        "k,rk,ck->rc", weights * xi, phi_r[:, ii], phi_c[:, jj]
    )
    # Pointwise variance of the truncation: sum_k lam_k phi_k(x)^2.
    variance = np.einsum(
        "k,rk,ck->rc", weights**2, phi_r[:, ii] ** 2, phi_c[:, jj] ** 2
    )
    return field / np.sqrt(np.maximum(variance, 1e-300))


def _edge_factors(
    node_field: np.ndarray, sigma: float
) -> tuple[np.ndarray, np.ndarray]:
    """Lognormal edge factors from a node-centered Gaussian field.

    Each wire segment takes the mean of its two endpoint values, so
    horizontal and vertical segments around the same node stay
    correlated (the physical picture: local linewidth shifts affect all
    nearby wires together).
    """
    z_h = 0.5 * (node_field[:, :-1] + node_field[:, 1:])
    z_v = 0.5 * (node_field[:-1, :] + node_field[1:, :])
    return np.exp(sigma * z_h), np.exp(sigma * z_v)


def perturb_grid(
    grid: Grid2D,
    sigma_wire: float,
    rng: np.random.Generator | int | None = None,
    *,
    sigma_pad: float = 0.0,
    corr_length: float = 0.0,
    kl_rank: int = 16,
) -> Grid2D:
    """Return a copy of ``grid`` with jittered conductances.

    ``sigma_wire`` applies multiplicative lognormal jitter to every wire
    segment -- i.i.d. when ``corr_length == 0`` (the historical
    behaviour), or spatially correlated through a rank-``kl_rank``
    KL field when ``corr_length > 0``.  ``sigma_pad`` jitters the pad
    conductances (only where pads exist; zero entries stay zero).  All
    sigmas equal to zero make this an exact no-op copy.  Loads are
    never touched.
    """
    sigma_wire = _check_sigma(sigma_wire, "sigma_wire")
    sigma_pad = _check_sigma(sigma_pad, "sigma_pad")
    out = grid.copy()
    if sigma_wire == 0 and sigma_pad == 0:
        return out
    gen = np.random.default_rng(rng)
    if sigma_wire > 0:
        if corr_length > 0:
            node_field = kl_gaussian_field(
                grid.rows, grid.cols, corr_length, kl_rank, gen
            )
            f_h, f_v = _edge_factors(node_field, sigma_wire)
        else:
            # Zero-median jitter: multiply by exp(N(0, sigma)).
            f_h = gen.lognormal(0.0, sigma_wire, size=out.g_h.shape)
            f_v = gen.lognormal(0.0, sigma_wire, size=out.g_v.shape)
        out.g_h = out.g_h * f_h
        out.g_v = out.g_v * f_v
    if sigma_pad > 0:
        out.g_pad = out.g_pad * gen.lognormal(0.0, sigma_pad, size=out.g_pad.shape)
    return out


def perturb_conductances(
    grid: Grid2D,
    sigma: float,
    rng: np.random.Generator | int | None = None,
) -> Grid2D:
    """Historical API: i.i.d. lognormal jitter on the wire conductances
    only (sigma = 0 is a no-op copy).  Thin wrapper over
    :func:`perturb_grid`; pad conductances and loads are untouched."""
    return perturb_grid(grid, sigma, rng)


def perturb_tsv_resistances(
    pillars: PillarSet,
    sigma: float,
    rng: np.random.Generator | int | None = None,
) -> PillarSet:
    """Jitter every TSV (via) segment resistance by an i.i.d. lognormal
    factor (sigma = 0 copies verbatim)."""
    sigma = _check_sigma(sigma, "sigma_tsv")
    r_seg = pillars.r_seg.copy()
    if sigma > 0:
        gen = np.random.default_rng(rng)
        r_seg = r_seg * gen.lognormal(0.0, sigma, size=r_seg.shape)
    return PillarSet(
        positions=pillars.positions.copy(),
        r_seg=r_seg,
        v_pin=pillars.v_pin,
        has_pin=pillars.has_pin.copy(),
    )


def perturb_stack(
    stack: PowerGridStack,
    *,
    sigma_wire: float = 0.0,
    sigma_pad: float = 0.0,
    sigma_tsv: float = 0.0,
    corr_length: float = 0.0,
    kl_rank: int = 16,
    rng: np.random.Generator | int | None = None,
) -> PowerGridStack:
    """Jitter a whole 3-D stack: per-tier wire/pad conductances plus the
    vertical via (TSV) segment resistances.

    Tiers draw independent fields (intra-die variation is per-die, and
    stacked dies come from different wafers).  All sigmas zero is an
    exact no-op copy.
    """
    gen = np.random.default_rng(rng)
    tiers = [
        perturb_grid(
            tier,
            sigma_wire,
            gen,
            sigma_pad=sigma_pad,
            corr_length=corr_length,
            kl_rank=kl_rank,
        )
        for tier in stack.tiers
    ]
    pillars = perturb_tsv_resistances(stack.pillars, sigma_tsv, gen)
    return PowerGridStack(
        tiers=tiers, pillars=pillars, name=stack.name, net=stack.net
    )
