"""Conductance perturbation (process-variation style jitter).

The paper's benchmarks are uniform meshes; real extracted grids are not.
Multiplicative lognormal jitter on segment conductances lets tests and
ablations exercise the non-uniform code paths (per-row factorization in the
row-based solver, general multigrid coarsening) without a full extraction
flow.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.grid.grid2d import Grid2D


def perturb_conductances(
    grid: Grid2D,
    sigma: float,
    rng: np.random.Generator | int | None = None,
) -> Grid2D:
    """Return a copy of ``grid`` with each wire conductance multiplied by an
    i.i.d. lognormal factor of the given ``sigma`` (sigma = 0 is a no-op
    copy).  Pad conductances and loads are untouched.
    """
    if sigma < 0:
        raise GridError("sigma must be non-negative")
    out = grid.copy()
    if sigma == 0:
        return out
    gen = np.random.default_rng(rng)
    # Zero-median jitter: multiply by exp(N(0, sigma)).
    out.g_h = out.g_h * gen.lognormal(0.0, sigma, size=out.g_h.shape)
    out.g_v = out.g_v * gen.lognormal(0.0, sigma, size=out.g_v.shape)
    return out
