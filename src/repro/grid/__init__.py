"""Power-grid data models and synthesis.

The two central types are :class:`~repro.grid.grid2d.Grid2D` (one tier's
regular resistive mesh) and :class:`~repro.grid.stack3d.PowerGridStack`
(a 3-D stack of tiers connected by TSV pillars, pins on the topmost tier).
"""

from repro.grid.grid2d import Grid2D
from repro.grid.stack3d import PillarSet, PowerGridStack
from repro.grid.conductance import (
    grid2d_system,
    stack_system,
    stack_node_index,
)
from repro.grid.generators import (
    uniform_tier,
    synthesize_tier,
    synthesize_stack,
    uniform_tsv_positions,
    paper_stack,
)
from repro.grid.loads import make_loads
from repro.grid.pads import place_pads
from repro.grid.perturb import (
    kl_gaussian_field,
    perturb_conductances,
    perturb_grid,
    perturb_stack,
    perturb_tsv_resistances,
)
from repro.grid.validate import validate_grid2d, validate_stack

__all__ = [
    "Grid2D",
    "PillarSet",
    "PowerGridStack",
    "grid2d_system",
    "stack_system",
    "stack_node_index",
    "uniform_tier",
    "synthesize_tier",
    "synthesize_stack",
    "uniform_tsv_positions",
    "paper_stack",
    "make_loads",
    "place_pads",
    "kl_gaussian_field",
    "perturb_conductances",
    "perturb_grid",
    "perturb_stack",
    "perturb_tsv_resistances",
    "validate_grid2d",
    "validate_stack",
]
