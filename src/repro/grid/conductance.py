"""Sparse conductance-matrix assembly for tiers and stacks.

All functions return ``scipy.sparse`` CSR matrices and dense RHS vectors for
the nodal system ``G x = b`` under the sign conventions documented in
:mod:`repro.grid.grid2d`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GridError
from repro.grid.grid2d import Grid2D
from repro.grid.stack3d import PowerGridStack


def tier_edges(grid: Grid2D) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All wire segments of one tier as flat node-index pairs.

    Returns ``(u, v, g)`` arrays where segment ``k`` connects local nodes
    ``u[k]`` and ``v[k]`` with conductance ``g[k]``.
    """
    rows, cols = grid.rows, grid.cols
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    parts_u, parts_v, parts_g = [], [], []
    if cols > 1:
        parts_u.append(idx[:, :-1].ravel())
        parts_v.append(idx[:, 1:].ravel())
        parts_g.append(grid.g_h.ravel())
    if rows > 1:
        parts_u.append(idx[:-1, :].ravel())
        parts_v.append(idx[1:, :].ravel())
        parts_g.append(grid.g_v.ravel())
    if not parts_u:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0)
    return (
        np.concatenate(parts_u),
        np.concatenate(parts_v),
        np.concatenate(parts_g),
    )


def _laplacian_from_edges(
    n: int, u: np.ndarray, v: np.ndarray, g: np.ndarray, diag_extra: np.ndarray
) -> sp.csr_matrix:
    """Weighted graph Laplacian plus an extra diagonal term, as CSR."""
    rows = np.concatenate([u, v, u, v])
    cols = np.concatenate([v, u, u, v])
    data = np.concatenate([-g, -g, g, g])
    lap = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    if np.any(diag_extra):
        lap = lap + sp.diags(diag_extra, format="csr")
    lap.sum_duplicates()
    return lap


def grid2d_matrix(grid: Grid2D) -> tuple[sp.csr_matrix, np.ndarray]:
    """Full nodal system ``(G, b)`` of a stand-alone tier.

    ``G`` includes pad conductances on the diagonal; ``b`` carries the pad
    rail injection minus the device loads.  ``G`` is singular when the tier
    has no pads (no DC path to a rail) -- callers that need a solvable
    system should check :func:`repro.grid.validate.validate_grid2d`.
    """
    u, v, g = tier_edges(grid)
    lap = _laplacian_from_edges(grid.n_nodes, u, v, g, grid.g_pad.ravel())
    b = grid.g_pad.ravel() * grid.v_pad - grid.loads.ravel()
    return lap, b


def grid2d_system(
    grid: Grid2D,
    dirichlet_mask: np.ndarray | None = None,
    dirichlet_values: np.ndarray | None = None,
) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Reduced system for the free nodes of a tier.

    Parameters
    ----------
    dirichlet_mask:
        Boolean ``(rows, cols)`` mask of nodes held at fixed voltages (e.g.
        TSV nodes during the VP intra-plane phase).  ``None`` means no
        constrained nodes.
    dirichlet_values:
        ``(rows, cols)`` voltages; only entries under the mask are read.

    Returns
    -------
    (A, b, free_index):
        ``A`` is the ``(F, F)`` system over free nodes, ``b`` the matching
        RHS with Dirichlet couplings folded in, and ``free_index`` the flat
        node indices of the free nodes (so ``x_full[free_index] = x``).
    """
    full, b_full = grid2d_matrix(grid)
    n = grid.n_nodes
    if dirichlet_mask is None:
        return full, b_full, np.arange(n, dtype=np.int64)
    mask = np.asarray(dirichlet_mask, dtype=bool).ravel()
    if mask.shape != (n,):
        raise GridError(
            f"dirichlet mask has {mask.size} entries, expected {n}"
        )
    if dirichlet_values is None:
        raise GridError("dirichlet_values required when dirichlet_mask is given")
    values = np.asarray(dirichlet_values, dtype=float).ravel()
    free = np.flatnonzero(~mask)
    fixed = np.flatnonzero(mask)
    a_ff = full[free][:, free].tocsr()
    coupling = full[free][:, fixed]
    b = b_full[free] - coupling @ values[fixed]
    return a_ff, b, free


def stack_node_index(
    stack: PowerGridStack, tier: int, i: int, j: int
) -> int:
    """Global node index of lattice position ``(i, j)`` on ``tier``."""
    if not (0 <= tier < stack.n_tiers):
        raise GridError(f"tier {tier} outside stack of {stack.n_tiers} tiers")
    return tier * stack.rows * stack.cols + stack.tiers[tier].node_index(i, j)


def stack_system(stack: PowerGridStack) -> tuple[sp.csr_matrix, np.ndarray]:
    """Assemble the full 3-D nodal system ``(G, b)`` of a stack.

    Global node ordering is tier-major (tier 0 = bottommost first), row-major
    within a tier.  Package pins are ideal sources: the topmost TSV segment
    of every pillar is folded into the diagonal and RHS, so pins do not
    appear as unknowns.
    """
    per_tier = stack.rows * stack.cols
    n = stack.n_nodes
    flat_pillars = stack.pillar_flat_indices()
    r_seg = stack.pillars.r_seg

    parts_u, parts_v, parts_g = [], [], []
    diag_extra = np.zeros(n)
    b = np.zeros(n)

    for l, tier in enumerate(stack.tiers):
        offset = l * per_tier
        u, v, g = tier_edges(tier)
        parts_u.append(u + offset)
        parts_v.append(v + offset)
        parts_g.append(g)
        local_diag = tier.g_pad.ravel()
        diag_extra[offset : offset + per_tier] += local_diag
        b[offset : offset + per_tier] += (
            local_diag * tier.v_pad - tier.loads.ravel()
        )

    # Inter-tier TSV segments.
    for l in range(stack.n_tiers - 1):
        g_seg = 1.0 / r_seg[l]
        parts_u.append(l * per_tier + flat_pillars)
        parts_v.append((l + 1) * per_tier + flat_pillars)
        parts_g.append(g_seg)

    # Topmost segment to the pins (ideal v_pin rail); only pillars that
    # actually reach a pin contribute.
    pinned = stack.pillars.has_pin
    top = (stack.n_tiers - 1) * per_tier + flat_pillars[pinned]
    g_top = 1.0 / r_seg[stack.n_tiers - 1][pinned]
    diag_extra[top] += g_top
    b[top] += g_top * stack.v_pin

    u = np.concatenate(parts_u) if parts_u else np.empty(0, dtype=np.int64)
    v = np.concatenate(parts_v) if parts_v else np.empty(0, dtype=np.int64)
    g = np.concatenate(parts_g) if parts_g else np.empty(0)
    lap = _laplacian_from_edges(n, u, v, g, diag_extra)
    return lap, b


def stack_voltage_array(stack: PowerGridStack, x: np.ndarray) -> np.ndarray:
    """Reshape a flat global solution vector to ``(T, rows, cols)``."""
    expected = stack.n_nodes
    x = np.asarray(x, dtype=float)
    if x.shape != (expected,):
        raise GridError(f"solution has shape {x.shape}, expected ({expected},)")
    return x.reshape(stack.n_tiers, stack.rows, stack.cols)
