"""Device-load synthesis for benchmark grids.

The paper attaches an independent current source to every non-TSV node
("a device or a group of devices in the vicinity of the node") and forbids
loads at TSV nodes (keep-out zones).  These generators produce the load
array for one tier given the mask of nodes allowed to carry loads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError

LOAD_PATTERNS = ("uniform", "random", "lognormal", "hotspot")


def make_loads(
    rows: int,
    cols: int,
    allowed: np.ndarray | None = None,
    *,
    pattern: str = "random",
    current_per_node: float = 1e-3,
    total_current: float | None = None,
    rng: np.random.Generator | int | None = None,
    hotspot_count: int = 3,
    hotspot_sigma: float | None = None,
    lognormal_sigma: float = 0.7,
) -> np.ndarray:
    """Generate a ``(rows, cols)`` array of device currents (A).

    Parameters
    ----------
    allowed:
        Boolean mask of nodes that may carry a load (``None`` = all nodes).
        Nodes outside the mask get exactly zero (keep-out).
    pattern:
        ``"uniform"`` -- every allowed node draws the same current;
        ``"random"`` -- i.i.d. uniform in ``[0.2, 1.8] * mean``;
        ``"lognormal"`` -- heavy-tailed i.i.d. draws;
        ``"hotspot"`` -- a background plus Gaussian activity blobs, the
        standard model for clustered switching activity.
    current_per_node:
        Mean current per allowed node; ignored when ``total_current`` is
        given.
    total_current:
        If set, loads are rescaled so they sum to exactly this value.
    rng:
        ``numpy`` generator or seed for reproducibility.
    """
    if pattern not in LOAD_PATTERNS:
        raise GridError(f"unknown load pattern {pattern!r}; use one of {LOAD_PATTERNS}")
    if current_per_node < 0:
        raise GridError("current_per_node must be non-negative")
    gen = np.random.default_rng(rng)
    if allowed is None:
        allowed = np.ones((rows, cols), dtype=bool)
    allowed = np.asarray(allowed, dtype=bool)
    if allowed.shape != (rows, cols):
        raise GridError(
            f"allowed mask has shape {allowed.shape}, expected {(rows, cols)}"
        )
    n_allowed = int(allowed.sum())
    loads = np.zeros((rows, cols))
    if n_allowed == 0:
        return loads

    if pattern == "uniform":
        values = np.full(n_allowed, current_per_node)
    elif pattern == "random":
        values = gen.uniform(0.2, 1.8, size=n_allowed) * current_per_node
    elif pattern == "lognormal":
        # Mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); pick mu so the
        # expected value equals current_per_node.
        mu = np.log(current_per_node) - lognormal_sigma**2 / 2.0
        values = gen.lognormal(mean=mu, sigma=lognormal_sigma, size=n_allowed)
    else:  # hotspot
        values = _hotspot_field(
            rows, cols, gen, hotspot_count, hotspot_sigma
        )[allowed]
        values *= current_per_node / max(values.mean(), 1e-30)

    loads[allowed] = values
    if total_current is not None:
        if total_current < 0:
            raise GridError("total_current must be non-negative")
        current_sum = loads.sum()
        if current_sum > 0:
            loads *= total_current / current_sum
    return loads


def scale_loads(loads: np.ndarray, scale: float) -> np.ndarray:
    """Scale a tier's load field by a non-negative corner factor.

    Scaling preserves keep-out zeros exactly, so a scaled field is valid
    for the same TSV layout as the original.  Returns a new array.
    """
    scale = float(scale)
    if scale < 0:
        raise GridError(f"load scale must be >= 0, got {scale}")
    return np.asarray(loads, dtype=float) * scale


def _hotspot_field(
    rows: int,
    cols: int,
    gen: np.random.Generator,
    hotspot_count: int,
    sigma: float | None,
) -> np.ndarray:
    """Background activity of 1.0 plus Gaussian blobs peaking around 4.0."""
    if sigma is None:
        sigma = max(min(rows, cols) / 8.0, 1.0)
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    field = np.ones((rows, cols))
    for _ in range(hotspot_count):
        ci = gen.uniform(0, rows - 1)
        cj = gen.uniform(0, cols - 1)
        amplitude = gen.uniform(2.0, 4.0)
        field += amplitude * np.exp(
            -((ii - ci) ** 2 + (jj - cj) ** 2) / (2.0 * sigma**2)
        )
    return field
