"""Pad placement for stand-alone 2-D grids.

Tiers inside a 3-D stack are powered exclusively through TSV pillars and
carry no in-plane pads; these helpers serve the 2-D experiments (row-based
solver validation, multigrid tests) where the plane itself must reach a
rail.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.grid.grid2d import Grid2D

PAD_SCHEMES = ("corners", "ring", "uniform", "center")


def pad_mask(
    rows: int,
    cols: int,
    scheme: str = "corners",
    *,
    pitch: int = 8,
) -> np.ndarray:
    """Boolean mask of pad locations for the given placement scheme."""
    if scheme not in PAD_SCHEMES:
        raise GridError(f"unknown pad scheme {scheme!r}; use one of {PAD_SCHEMES}")
    mask = np.zeros((rows, cols), dtype=bool)
    if scheme == "corners":
        mask[0, 0] = mask[0, -1] = mask[-1, 0] = mask[-1, -1] = True
    elif scheme == "center":
        mask[rows // 2, cols // 2] = True
    elif scheme == "ring":
        step = max(pitch, 1)
        mask[0, ::step] = True
        mask[-1, ::step] = True
        mask[::step, 0] = True
        mask[::step, -1] = True
    else:  # uniform
        step = max(pitch, 1)
        mask[::step, ::step] = True
    return mask


def place_pads(
    grid: Grid2D,
    scheme: str = "corners",
    *,
    v_pad: float = 1.8,
    r_pad: float = 0.01,
    pitch: int = 8,
) -> Grid2D:
    """Return a copy of ``grid`` with pads attached per ``scheme``.

    ``r_pad`` is the series resistance of each pad connection (a near-ideal
    0.01 ohm by default).
    """
    if r_pad <= 0:
        raise GridError("pad resistance must be positive")
    mask = pad_mask(grid.rows, grid.cols, scheme, pitch=pitch)
    out = grid.copy()
    out.g_pad = np.where(mask, 1.0 / r_pad, 0.0)
    out.v_pad = v_pad
    return out
