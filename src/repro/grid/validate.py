"""Structural validation of grids and stacks.

These checks catch the failure modes that otherwise surface as confusing
numerics downstream: grids with no DC path to a rail (singular systems),
loads placed inside TSV keep-out zones, non-positive conductances, and
disconnected islands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.errors import GridError
from repro.grid.conductance import grid2d_matrix, stack_system, tier_edges
from repro.grid.grid2d import Grid2D
from repro.grid.stack3d import PowerGridStack


@dataclass
class ValidationReport:
    """Outcome of a validation pass.

    ``ok`` is True when no *errors* were found; ``warnings`` may still be
    non-empty (conditions that are legal but usually unintended).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise GridError("; ".join(self.errors))


def _connectivity_to_sources(
    matrix: sp.csr_matrix, source_mask: np.ndarray
) -> tuple[int, int]:
    """(number of components, number of components containing a source)."""
    adjacency = matrix.copy()
    adjacency.setdiag(0)
    adjacency.eliminate_zeros()
    n_comp, labels = csgraph.connected_components(adjacency, directed=False)
    powered = np.unique(labels[source_mask]) if source_mask.any() else np.empty(0)
    return n_comp, int(powered.size)


def validate_grid2d(grid: Grid2D, *, require_pads: bool = True) -> ValidationReport:
    """Validate a stand-alone tier.

    ``require_pads=False`` skips the rail-reachability check (appropriate
    for tiers that live inside a stack and are powered via pillars).
    """
    report = ValidationReport()
    if np.any(~np.isfinite(grid.g_h)) or np.any(~np.isfinite(grid.g_v)):
        report.errors.append("non-finite wire conductance")
    if np.any(~np.isfinite(grid.loads)):
        report.errors.append("non-finite load current")
    if grid.g_h.size and grid.g_h.min() <= 0:
        report.warnings.append("zero-conductance horizontal segment (open wire)")
    if grid.g_v.size and grid.g_v.min() <= 0:
        report.warnings.append("zero-conductance vertical segment (open wire)")

    if require_pads:
        if not np.any(grid.g_pad > 0):
            report.errors.append("grid has no pads: nodal system is singular")
        else:
            matrix, _ = grid2d_matrix(grid)
            n_comp, powered = _connectivity_to_sources(
                matrix, (grid.g_pad > 0).ravel()
            )
            if powered < n_comp:
                report.errors.append(
                    f"{n_comp - powered} of {n_comp} connected components "
                    "have no path to a pad"
                )
    return report


def validate_stack(stack: PowerGridStack, *, strict_keepout: bool = True) -> ValidationReport:
    """Validate a 3-D stack: keep-out rule, pillar sanity, connectivity."""
    report = ValidationReport()
    violations = stack.keepout_violations()
    if violations:
        message = f"{violations} pillar nodes carry device loads (keep-out violated)"
        if strict_keepout:
            report.errors.append(message)
        else:
            report.warnings.append(message)

    for l, tier in enumerate(stack.tiers):
        tier_report = validate_grid2d(tier, require_pads=False)
        report.errors.extend(f"tier {l}: {e}" for e in tier_report.errors)
        report.warnings.extend(f"tier {l}: {w}" for w in tier_report.warnings)
        if np.any(tier.g_pad > 0):
            report.warnings.append(
                f"tier {l} has in-plane pads; stacks are normally powered "
                "only through pillars"
            )

    # Every node must reach a pin: build the global matrix (pins folded into
    # the diagonal of the topmost pillar nodes) and check each component
    # contains at least one pin-attached node.
    matrix, _ = stack_system(stack)
    per_tier = stack.rows * stack.cols
    pin_mask = np.zeros(stack.n_nodes, dtype=bool)
    pinned_flat = stack.pillar_flat_indices()[stack.pillars.has_pin]
    pin_mask[(stack.n_tiers - 1) * per_tier + pinned_flat] = True
    n_comp, powered = _connectivity_to_sources(matrix, pin_mask)
    if powered < n_comp:
        report.errors.append(
            f"{n_comp - powered} of {n_comp} connected components "
            "have no path to a package pin"
        )
    return report


def tier_degree_stats(grid: Grid2D) -> dict[str, float]:
    """Diagonal-dominance diagnostics used by the §III-A discussion.

    Returns the min/mean ratio of diagonal to off-diagonal row sums of the
    tier matrix (1.0 everywhere for a pure resistive mesh without pads;
    > 1 where pads add diagonal mass).
    """
    u, v, g = tier_edges(grid)
    n = grid.n_nodes
    offdiag = np.zeros(n)
    np.add.at(offdiag, u, g)
    np.add.at(offdiag, v, g)
    diag = offdiag + grid.g_pad.ravel()
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(offdiag > 0, diag / offdiag, np.inf)
    return {
        "min_ratio": float(ratio.min()),
        "mean_ratio": float(ratio[np.isfinite(ratio)].mean()),
        "nodes": float(n),
    }
