"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GridError(ReproError):
    """Invalid power-grid structure (shapes, signs, bounds, keep-out)."""


class NetlistError(ReproError):
    """Malformed netlist text or inconsistent element definitions."""


class NetlistSyntaxError(NetlistError):
    """A netlist line could not be parsed.

    Carries the offending line number and text for diagnostics.
    """

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line!r}")
        self.line_no = line_no
        self.line = line


class SingularSystemError(ReproError):
    """The linear system has no unique solution.

    Typically the grid (or a connected component of it) has no path to any
    voltage source / pad, leaving the node voltages undetermined.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance in max_iter steps."""

    def __init__(self, message: str, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SolutionFormatError(ReproError):
    """A solution (.solution) file is malformed."""
